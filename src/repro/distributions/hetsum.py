"""Sums of *independent but non-identical* random variables.

The paper's general workflow instance (Section 4.1) gives every task its
own duration law; its static strategy then needs the law of the partial
sum ``S_k = X_1 + ... + X_k`` for *heterogeneous* ``X_i`` — which the
paper declares "out of reach" analytically and leaves to future-work
heuristics. Numerically it is entirely tractable:

* :class:`HeterogeneousSum` — the exact law of the sum, computed by
  chaining FFT lattice convolutions (cost ``O(G log G)`` per stage for a
  ``G``-point lattice);
* :func:`normal_approximation` — the CLT moment-matching heuristic
  (mean/variance add), the cheap approximation the exact law lets us
  grade.

Closed-form shortcuts are applied when every summand belongs to one
closed family (all Normal, all Gamma with a shared scale, all
Deterministic).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np
from numpy.typing import ArrayLike, NDArray

from .._validation import check_integer
from .base import ContinuousDistribution, Distribution
from .deterministic import Deterministic
from .gamma import Gamma
from .normal import Normal

__all__ = ["HeterogeneousSum", "sum_of", "normal_approximation"]


def normal_approximation(laws: Sequence[Distribution]) -> Normal:
    """CLT moment-matching: ``N(sum of means, sum of variances)``.

    The classic cheap heuristic for partial-sum laws; exact when every
    summand is Normal, increasingly good as the count grows, and
    measurably wrong for few skewed summands — which is precisely what
    ``benchmarks/bench_general_chain.py`` quantifies.
    """
    if not laws:
        raise ValueError("need at least one summand")
    mean = sum(law.mean() for law in laws)
    var = sum(law.var() for law in laws)
    if var <= 0.0:
        raise ValueError("normal approximation needs positive total variance")
    return Normal(mean, math.sqrt(var))


def sum_of(laws: Sequence[Distribution], *, grid_points: int = 4096) -> Distribution:
    """Exact (or closed-form) law of the sum of independent ``laws``.

    Dispatches to a closed form when available, else builds a
    :class:`HeterogeneousSum` lattice law.
    """
    laws = list(laws)
    if not laws:
        raise ValueError("need at least one summand")
    if len(laws) == 1:
        return laws[0]
    if all(isinstance(l, Normal) for l in laws):
        mu = sum(l.mu for l in laws)
        sigma = math.sqrt(sum(l.sigma**2 for l in laws))
        return Normal(mu, sigma)
    if all(isinstance(l, Deterministic) for l in laws):
        return Deterministic(sum(l.value for l in laws))
    if all(isinstance(l, Gamma) for l in laws):
        thetas = {l.theta for l in laws}
        if len(thetas) == 1:
            return Gamma(sum(l.k for l in laws), laws[0].theta)
    return HeterogeneousSum(laws, grid_points=grid_points)


# Composite of arbitrary summand laws: outside the CLI spec grammar by
# design (cache callers key on the summands' own spec() strings).
class HeterogeneousSum(ContinuousDistribution):  # lint: allow[REP006]
    """Lattice law of ``X_1 + ... + X_n`` with arbitrary continuous ``X_i``.

    Each summand's density is sampled on a shared-step lattice covering
    all but ``tail_eps`` of its mass; the sum's density is the chained
    linear convolution, computed pairwise with FFTs.

    Parameters
    ----------
    laws:
        Independent continuous summands (at least 2), each supported on
        a (numerically) bounded-below interval.
    grid_points:
        Lattice resolution of the *result*; per-summand grids are scaled
        proportionally to their support width.
    tail_eps:
        Upper-tail mass discarded for unbounded summands.
    """

    def __init__(
        self,
        laws: Sequence[Distribution],
        *,
        grid_points: int = 4096,
        tail_eps: float = 1e-12,
    ) -> None:
        laws = list(laws)
        if len(laws) < 2:
            raise ValueError("HeterogeneousSum needs at least 2 summands")
        if any(l.is_discrete for l in laws):
            raise TypeError("HeterogeneousSum requires continuous summands")
        grid_points = check_integer(grid_points, "grid_points", minimum=64)
        self.laws = laws

        # Effective per-summand supports.
        bounds = []
        for law in laws:
            lo = law.lower
            if not math.isfinite(lo):
                lo = float(law.ppf(tail_eps))
            hi = law.upper
            if not math.isfinite(hi):
                hi = float(law.ppf(1.0 - tail_eps))
            if not hi > lo:
                # Degenerate (Deterministic-like): widen marginally.
                hi = lo + 1e-9
            bounds.append((lo, hi))
        total_width = sum(hi - lo for lo, hi in bounds)
        step = total_width / (grid_points - 1)
        self._step = step

        # Convolve sequentially on the common-step lattice.
        pmf = None
        offset = 0.0
        for law, (lo, hi) in zip(laws, bounds):
            n_cells = max(2, int(math.ceil((hi - lo) / step)) + 1)
            xs = lo + step * np.arange(n_cells)
            # Exact cell masses via CDF differences: node j carries the
            # probability of [x_j - step/2, x_j + step/2]. This is what
            # keeps lattice means unbiased even for densities with a
            # jump at the support edge (e.g. Exponential at 0).
            edges = np.concatenate(([xs[0] - 0.5 * step], xs + 0.5 * step))
            cdf_vals = np.asarray(law.cdf(edges), dtype=float)
            weights = np.maximum(np.diff(cdf_vals), 0.0)
            total = weights.sum()
            if total <= 0.0:
                # All mass inside one lattice cell: treat as a point mass.
                weights = np.zeros(n_cells)
                weights[0] = 1.0
            else:
                weights = weights / total
            if pmf is None:
                pmf = weights
            else:
                out_len = pmf.size + weights.size - 1
                fft_len = 1 << (out_len - 1).bit_length()
                spectrum = np.fft.rfft(pmf, fft_len) * np.fft.rfft(weights, fft_len)
                pmf = np.fft.irfft(spectrum, fft_len)[:out_len]
                pmf = np.maximum(pmf, 0.0)
                pmf /= pmf.sum()
            offset += lo
        assert pmf is not None
        self._grid = offset + step * np.arange(pmf.size)
        self._pdf_grid = pmf / step
        cdf = np.cumsum(pmf)
        self._cdf_grid = np.clip(cdf - 0.5 * pmf, 0.0, 1.0)

    @property
    def support(self) -> tuple[float, float]:
        return (float(self._grid[0]), float(self._grid[-1]))

    def pdf(self, x: ArrayLike) -> NDArray[np.float64]:
        x = np.asarray(x, dtype=float)
        return np.interp(x, self._grid, self._pdf_grid, left=0.0, right=0.0)

    def cdf(self, x: ArrayLike) -> NDArray[np.float64]:
        x = np.asarray(x, dtype=float)
        return np.interp(x, self._grid, self._cdf_grid, left=0.0, right=1.0)

    def mean(self) -> float:
        return float(np.sum(self._grid * self._pdf_grid) * self._step)

    def var(self) -> float:
        m = self.mean()
        return float(np.sum((self._grid - m) ** 2 * self._pdf_grid) * self._step)

    def _sample(
        self, size: int | tuple[int, ...], gen: np.random.Generator
    ) -> NDArray[np.float64]:
        shape = (size,) if isinstance(size, int) else tuple(size)
        out = np.zeros(shape)
        for law in self.laws:
            out = out + law.sample(shape, gen)
        return out

    def _repr_params(self) -> dict[str, object]:
        return {"n_summands": len(self.laws)}
