"""Uniform law on ``[a, b]``.

This is the first checkpoint-duration model of the paper (Section 3.2.1):
``C ~ Uniform([a, b])`` needs no truncation, and the optimal margin has
the closed form ``X_opt = min((R + a) / 2, b)``.
"""

from __future__ import annotations


import numpy as np
from numpy.typing import ArrayLike, NDArray

from .._validation import check_interval
from .base import ContinuousDistribution, spec_number

__all__ = ["Uniform"]


class Uniform(ContinuousDistribution):
    """Continuous uniform distribution on ``[a, b]``.

    Parameters
    ----------
    a, b:
        Support endpoints with ``a < b``.

    Examples
    --------
    >>> u = Uniform(1.0, 7.5)
    >>> u.mean()
    4.25
    >>> float(u.cdf(4.25))
    0.5
    """

    def __init__(self, a: float, b: float) -> None:
        self.a, self.b = check_interval(a, b, "a", "b")
        self._width = self.b - self.a

    @property
    def support(self) -> tuple[float, float]:
        return (self.a, self.b)

    def pdf(self, x: ArrayLike) -> NDArray[np.float64]:
        x = np.asarray(x, dtype=float)
        inside = (x >= self.a) & (x <= self.b)
        return np.where(inside, 1.0 / self._width, 0.0)

    def cdf(self, x: ArrayLike) -> NDArray[np.float64]:
        x = np.asarray(x, dtype=float)
        return np.clip((x - self.a) / self._width, 0.0, 1.0)

    def ppf(self, q: ArrayLike) -> NDArray[np.float64]:
        q = np.asarray(q, dtype=float)
        if np.any((q < 0.0) | (q > 1.0)):
            raise ValueError("quantile levels must lie in [0, 1]")
        return self.a + q * self._width

    def mean(self) -> float:
        return 0.5 * (self.a + self.b)

    def var(self) -> float:
        return self._width**2 / 12.0

    def _sample(
        self, size: int | tuple[int, ...], gen: np.random.Generator
    ) -> NDArray[np.float64]:
        return gen.uniform(self.a, self.b, size)

    def spec(self) -> str:
        return "uniform:" + ",".join(spec_number(v) for v in (self.a, self.b))

    def _repr_params(self) -> dict[str, object]:
        return {"a": self.a, "b": self.b}
