"""Exponential law of rate ``lam`` (mean ``1 / lam``).

Used by the paper (Section 3.2.2) as a checkpoint-duration model after
truncation to ``[a, b]``; the resulting optimal margin involves the
Lambert ``W`` function (see :mod:`repro.core.preemptible`).
"""

from __future__ import annotations

import math

import numpy as np
from numpy.typing import ArrayLike, NDArray

from .._validation import check_positive
from .base import ContinuousDistribution, spec_number

__all__ = ["Exponential"]


class Exponential(ContinuousDistribution):
    """Exponential distribution with rate ``lam`` on ``[0, inf)``.

    Parameters
    ----------
    lam:
        Rate parameter ``lambda > 0``; the mean is ``1 / lam``.

    Notes
    -----
    The survival function is computed directly as ``exp(-lam * x)`` so
    the deep upper tail keeps full relative precision, which matters
    when truncating to an interval far from the origin.
    """

    def __init__(self, lam: float) -> None:
        self.lam = check_positive(lam, "lam")

    @classmethod
    def from_mean(cls, mean: float) -> "Exponential":
        """Construct from the mean ``mu = 1 / lambda``."""
        return cls(1.0 / check_positive(mean, "mean"))

    @property
    def support(self) -> tuple[float, float]:
        return (0.0, math.inf)

    def pdf(self, x: ArrayLike) -> NDArray[np.float64]:
        x = np.asarray(x, dtype=float)
        with np.errstate(over="ignore"):
            vals = self.lam * np.exp(-self.lam * x)
        return np.where(x >= 0.0, vals, 0.0)

    def cdf(self, x: ArrayLike) -> NDArray[np.float64]:
        x = np.asarray(x, dtype=float)
        return np.where(x > 0.0, -np.expm1(-self.lam * np.maximum(x, 0.0)), 0.0)

    def sf(self, x: ArrayLike) -> NDArray[np.float64]:
        x = np.asarray(x, dtype=float)
        return np.where(x > 0.0, np.exp(-self.lam * np.maximum(x, 0.0)), 1.0)

    def ppf(self, q: ArrayLike) -> NDArray[np.float64]:
        q = np.asarray(q, dtype=float)
        if np.any((q < 0.0) | (q > 1.0)):
            raise ValueError("quantile levels must lie in [0, 1]")
        with np.errstate(divide="ignore"):
            return -np.log1p(-q) / self.lam

    def mean(self) -> float:
        return 1.0 / self.lam

    def var(self) -> float:
        return 1.0 / self.lam**2

    def _sample(
        self, size: int | tuple[int, ...], gen: np.random.Generator
    ) -> NDArray[np.float64]:
        return gen.exponential(1.0 / self.lam, size)

    def spec(self) -> str:
        return "exponential:" + ",".join(spec_number(v) for v in (self.lam,))

    def _repr_params(self) -> dict[str, object]:
        return {"lam": self.lam}
