"""Probability-distribution toolkit underpinning the checkpoint solvers.

The paper's results are parameterized by two laws — checkpoint duration
``D_C`` and task duration ``D_X``. This package implements every family
the paper instantiates (Uniform, Exponential, Normal, LogNormal, Gamma,
Poisson), plus Weibull / Deterministic / Empirical, generic interval
truncation (the paper's central construction), and laws of IID sums for
the static strategy.
"""

from .base import ContinuousDistribution, DiscreteDistribution, Distribution, RngLike, spec_number
from .beta import Beta
from .deterministic import Deterministic
from .empirical import Empirical
from .exponential import Exponential
from .gamma import Gamma
from .hetsum import HeterogeneousSum, normal_approximation, sum_of
from .lognormal import LogNormal
from .normal import Normal, Phi, Phi_inv, phi
from .order_stats import MaxOf, max_of
from .poisson import Poisson
from .sums import FFTConvolutionSum, fft_sum_cache_clear, fft_sum_cache_info, iid_sum
from .truncation import TruncatedContinuous, TruncatedDiscrete, truncate
from .uniform import Uniform
from .weibull import Weibull

__all__ = [
    "Distribution",
    "ContinuousDistribution",
    "DiscreteDistribution",
    "RngLike",
    "Uniform",
    "Beta",
    "Exponential",
    "Normal",
    "LogNormal",
    "Gamma",
    "Weibull",
    "Poisson",
    "Deterministic",
    "Empirical",
    "truncate",
    "TruncatedContinuous",
    "TruncatedDiscrete",
    "iid_sum",
    "FFTConvolutionSum",
    "fft_sum_cache_clear",
    "fft_sum_cache_info",
    "spec_number",
    "HeterogeneousSum",
    "sum_of",
    "normal_approximation",
    "MaxOf",
    "max_of",
    "phi",
    "Phi",
    "Phi_inv",
]
