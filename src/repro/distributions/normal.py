"""Normal (Gaussian) law.

Appears three times in the paper:

* as a checkpoint-duration model truncated to ``[a, b]`` (Section 3.2.3);
* as the task-duration law for the static strategy (Section 4.2.1), where
  the sum of ``n`` IID tasks is again Normal;
* truncated to ``[0, inf)`` for checkpoint durations in Section 4 and for
  task durations in the dynamic strategy (Section 4.3.1).

``phi``/``Phi`` (standard normal PDF/CDF) are exposed as module-level
helpers because the paper's formulas are written in terms of them.
"""

from __future__ import annotations

import math

import numpy as np
from numpy.typing import ArrayLike, NDArray
from scipy import special

from .._validation import check_finite, check_positive
from .base import ContinuousDistribution, spec_number

__all__ = ["Normal", "phi", "Phi", "Phi_inv"]

_SQRT2 = math.sqrt(2.0)
_INV_SQRT_2PI = 1.0 / math.sqrt(2.0 * math.pi)


def phi(t: ArrayLike) -> NDArray[np.float64]:
    """Standard normal density ``exp(-t^2/2) / sqrt(2 pi)``."""
    t = np.asarray(t, dtype=float)
    return _INV_SQRT_2PI * np.exp(-0.5 * t * t)


def Phi(x: ArrayLike) -> NDArray[np.float64]:
    """Standard normal CDF, via the complementary error function."""
    x = np.asarray(x, dtype=float)
    return 0.5 * special.erfc(-x / _SQRT2)


def Phi_inv(q: ArrayLike) -> NDArray[np.float64]:
    """Standard normal quantile function."""
    q = np.asarray(q, dtype=float)
    return -_SQRT2 * special.erfcinv(2.0 * q)


class Normal(ContinuousDistribution):
    """Normal distribution ``N(mu, sigma^2)``.

    Parameters
    ----------
    mu:
        Mean.
    sigma:
        Standard deviation (> 0).
    """

    def __init__(self, mu: float, sigma: float) -> None:
        self.mu = check_finite(mu, "mu")
        self.sigma = check_positive(sigma, "sigma")

    @property
    def support(self) -> tuple[float, float]:
        return (-math.inf, math.inf)

    def _z(self, x: ArrayLike) -> NDArray[np.float64]:
        return (np.asarray(x, dtype=float) - self.mu) / self.sigma

    def pdf(self, x: ArrayLike) -> NDArray[np.float64]:
        return phi(self._z(x)) / self.sigma

    def cdf(self, x: ArrayLike) -> NDArray[np.float64]:
        return Phi(self._z(x))

    def sf(self, x: ArrayLike) -> NDArray[np.float64]:
        return Phi(-self._z(x))

    def ppf(self, q: ArrayLike) -> NDArray[np.float64]:
        q = np.asarray(q, dtype=float)
        if np.any((q < 0.0) | (q > 1.0)):
            raise ValueError("quantile levels must lie in [0, 1]")
        return self.mu + self.sigma * Phi_inv(q)

    def mean(self) -> float:
        return self.mu

    def var(self) -> float:
        return self.sigma**2

    def _sample(
        self, size: int | tuple[int, ...], gen: np.random.Generator
    ) -> NDArray[np.float64]:
        return gen.normal(self.mu, self.sigma, size)

    def spec(self) -> str:
        return "normal:" + ",".join(spec_number(v) for v in (self.mu, self.sigma))

    def _repr_params(self) -> dict[str, object]:
        return {"mu": self.mu, "sigma": self.sigma}
