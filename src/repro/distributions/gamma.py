"""Gamma law with shape ``k`` and scale ``theta`` (Section 4.2.2).

Chosen by the paper as a task-duration model because the IID sum is
closed under the family: ``sum of n Gamma(k, theta) = Gamma(n k, theta)``.
The shape parameter may be non-integer, which the static strategy's
continuous relaxation ``g(y)`` exploits (it evaluates ``Gamma(y k, theta)``
for real ``y``).
"""

from __future__ import annotations

import math

import numpy as np
from numpy.typing import ArrayLike, NDArray
from scipy import special

from .._validation import check_positive
from .base import ContinuousDistribution, spec_number

__all__ = ["Gamma"]


class Gamma(ContinuousDistribution):
    """Gamma distribution with PDF ``x^(k-1) e^(-x/theta) / (Gamma(k) theta^k)``.

    Parameters
    ----------
    k:
        Shape parameter (> 0).
    theta:
        Scale parameter (> 0); the mean is ``k * theta``.
    """

    def __init__(self, k: float, theta: float) -> None:
        self.k = check_positive(k, "k")
        self.theta = check_positive(theta, "theta")

    @classmethod
    def from_moments(cls, mean: float, std: float) -> "Gamma":
        """Construct from mean and standard deviation.

        ``k = (mean / std)^2``, ``theta = std^2 / mean``.
        """
        mean = check_positive(mean, "mean")
        std = check_positive(std, "std")
        return cls((mean / std) ** 2, std**2 / mean)

    @property
    def support(self) -> tuple[float, float]:
        return (0.0, math.inf)

    def pdf(self, x: ArrayLike) -> NDArray[np.float64]:
        x = np.asarray(x, dtype=float)
        pos = x > 0.0
        safe = np.where(pos, x, 1.0)
        log_pdf = (
            (self.k - 1.0) * np.log(safe)
            - safe / self.theta
            - special.gammaln(self.k)
            - self.k * math.log(self.theta)
        )
        vals = np.exp(log_pdf)
        if self.k == 1.0:
            # Exponential special case: density is positive at x = 0.
            return np.where(x >= 0.0, np.exp(-x / self.theta) / self.theta, 0.0)
        return np.where(pos, vals, 0.0)

    def cdf(self, x: ArrayLike) -> NDArray[np.float64]:
        x = np.asarray(x, dtype=float)
        return special.gammainc(self.k, np.maximum(x, 0.0) / self.theta)

    def sf(self, x: ArrayLike) -> NDArray[np.float64]:
        x = np.asarray(x, dtype=float)
        return special.gammaincc(self.k, np.maximum(x, 0.0) / self.theta)

    def ppf(self, q: ArrayLike) -> NDArray[np.float64]:
        q = np.asarray(q, dtype=float)
        if np.any((q < 0.0) | (q > 1.0)):
            raise ValueError("quantile levels must lie in [0, 1]")
        return self.theta * special.gammaincinv(self.k, q)

    def mean(self) -> float:
        return self.k * self.theta

    def var(self) -> float:
        return self.k * self.theta**2

    def _sample(
        self, size: int | tuple[int, ...], gen: np.random.Generator
    ) -> NDArray[np.float64]:
        return gen.gamma(self.k, self.theta, size)

    def spec(self) -> str:
        return "gamma:" + ",".join(spec_number(v) for v in (self.k, self.theta))

    def _repr_params(self) -> dict[str, object]:
        return {"k": self.k, "theta": self.theta}
