"""Static strategy for the *general* (non-IID) workflow instance.

Section 4.1 of the paper defines the general problem — each task ``T_i``
has its own duration law ``D_X^(i)`` and checkpoint law ``D_C^(i)`` —
and the conclusion states that "extending the static strategy to find
the optimal solution for the general case seems out of reach", calling
for "efficient heuristics". This module supplies both the exact numeric
solution and two heuristics, so they can be graded against each other:

* :meth:`GeneralStaticSolver.expected_work` — the exact Equation-(3)
  analog for stopping after stage ``k``: the partial-sum law ``S_k`` is
  computed by heterogeneous FFT convolution
  (:class:`repro.distributions.hetsum.HeterogeneousSum`) and weighted by
  stage ``k``'s own checkpoint CDF;
* ``method="exact"`` — evaluate every feasible ``k`` exactly (cost:
  one convolution chain, evaluated incrementally);
* ``method="clt"`` — the moment-matching heuristic: approximate ``S_k``
  by a Normal law (sums of means/variances); fast and surprisingly good
  beyond a few stages;
* ``method="mean"`` — the naive deterministic heuristic: pretend every
  duration equals its mean (what a practitioner would do on a napkin).

``benchmarks/bench_general_chain.py`` measures the value lost by each
heuristic relative to the exact optimum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy import integrate

from typing import TYPE_CHECKING

from .._validation import check_integer, check_positive
from ..distributions import Deterministic, Distribution
from ..distributions.hetsum import normal_approximation, sum_of

if TYPE_CHECKING:  # avoid a core <-> workflows import cycle at runtime
    from ..workflows.chain import LinearWorkflow

__all__ = ["GeneralStaticSolver", "GeneralStaticSolution"]


@dataclass(frozen=True)
class GeneralStaticSolution:
    """Chosen stopping stage for a non-IID chain.

    Attributes
    ----------
    k_opt:
        1-based number of stages to run before checkpointing.
    expected_work_opt:
        Estimated ``E(W)`` of that choice *under the solving method*.
    method:
        ``"exact"``, ``"clt"`` or ``"mean"``.
    evaluations:
        ``{k: E(k)}`` as estimated by the method.
    """

    k_opt: int
    expected_work_opt: float
    method: str
    evaluations: dict[int, float] = field(default_factory=dict)


class GeneralStaticSolver:
    """Optimal / heuristic stage count for a heterogeneous chain.

    Parameters
    ----------
    R:
        Reservation length.
    workflow:
        A :class:`~repro.workflows.chain.LinearWorkflow`. For cyclic
        chains, stages repeat; ``max_stages`` bounds the horizon.
    max_stages:
        Stage-count horizon (defaults to the chain length for acyclic
        chains; required for cyclic ones... computed from mean durations
        otherwise).
    grid_points:
        Lattice resolution of the exact convolution path.
    """

    def __init__(
        self,
        R: float,
        workflow: "LinearWorkflow",
        *,
        max_stages: int | None = None,
        grid_points: int = 4096,
    ) -> None:
        self.R = check_positive(R, "R")
        self.workflow = workflow
        self.grid_points = check_integer(grid_points, "grid_points", minimum=64)
        if max_stages is None:
            if workflow.cyclic:
                mean = float(np.mean([t.duration_law.mean() for t in workflow.tasks]))
                if mean <= 0.0:
                    raise ValueError("cannot infer max_stages for zero-mean tasks")
                max_stages = max(2, math.ceil(3.0 * R / mean) + 5)
            else:
                max_stages = len(workflow)
        self.max_stages = check_integer(max_stages, "max_stages", minimum=1)

    # -- exact path -----------------------------------------------------------

    def _stage_laws(self, k: int) -> list[Distribution]:
        return [self.workflow.task_at(i).duration_law for i in range(k)]

    def _expected_with_sum_law(self, k: int, sum_law: Distribution) -> float:
        """E(saved work | stop after stage k) for a given S_k law."""
        ckpt = self.workflow.task_at(k - 1).checkpoint_law

        def success(slack: float) -> float:
            return float(ckpt.cdf(slack)) if slack > 0.0 else 0.0

        if isinstance(sum_law, Deterministic):
            s = sum_law.value
            return s * success(self.R - s) if 0.0 < s <= self.R else 0.0

        grid = getattr(sum_law, "_grid", None)
        if grid is not None:
            # Lattice law (FFT convolution): sum directly on its grid —
            # adaptive quadrature on a piecewise-linear density only
            # produces roundoff warnings for no accuracy gain.
            pdf = getattr(sum_law, "_pdf_grid")
            step = float(grid[1] - grid[0])
            inside = grid <= self.R
            xs = grid[inside]
            slack = self.R - xs
            succ = np.where(slack > 0.0, ckpt.cdf(np.maximum(slack, 0.0)), 0.0)
            return float(np.sum(xs * succ * pdf[inside]) * step)

        lo = sum_law.lower
        if not math.isfinite(lo):
            lo = sum_law.mean() - 12.0 * sum_law.std()
        lo = max(min(lo, self.R), 0.0) if lo >= 0.0 else lo
        if lo >= self.R:
            return 0.0

        def integrand(x: float) -> float:
            return x * success(self.R - x) * float(sum_law.pdf(x))

        center = sum_law.mean()
        points = [center] if lo < center < self.R else None
        val, _ = integrate.quad(integrand, lo, self.R, limit=400, points=points)
        return val

    def expected_work(self, k: int, method: str = "exact") -> float:
        """``E(W)`` when checkpointing after stage ``k`` (1-based).

        ``method`` selects the partial-sum model: ``"exact"`` (FFT
        convolution), ``"clt"`` (Normal moment matching) or ``"mean"``
        (deterministic means).
        """
        k = check_integer(k, "k", minimum=1)
        if k > self.max_stages:
            raise ValueError(f"k={k} exceeds max_stages={self.max_stages}")
        laws = self._stage_laws(k)
        if method == "exact":
            sum_law = sum_of(laws, grid_points=self.grid_points)
        elif method == "clt":
            if k == 1:
                sum_law = laws[0]
            else:
                sum_law = normal_approximation(laws)
        elif method == "mean":
            sum_law = Deterministic(sum(l.mean() for l in laws))
        else:
            raise ValueError(f"unknown method {method!r}; use exact, clt or mean")
        return self._expected_with_sum_law(k, sum_law)

    def solve(self, method: str = "exact") -> GeneralStaticSolution:
        """Pick the stage count maximizing ``E(k)`` under ``method``."""
        evaluations: dict[int, float] = {}
        best_k, best_val = 1, -math.inf
        for k in range(1, self.max_stages + 1):
            v = self.expected_work(k, method)
            evaluations[k] = v
            if v > best_val:
                best_k, best_val = k, v
        return GeneralStaticSolution(
            k_opt=best_k,
            expected_work_opt=best_val,
            method=method,
            evaluations=evaluations,
        )

    def heuristic_regret(self, method: str) -> tuple[float, GeneralStaticSolution, GeneralStaticSolution]:
        """Value lost by ``method`` relative to the exact optimum.

        Returns ``(regret, heuristic_solution, exact_solution)`` where
        ``regret = E_exact(k_exact) - E_exact(k_heuristic)`` — i.e. the
        heuristic's chosen ``k`` is re-scored under the exact model.
        """
        exact = self.solve("exact")
        heur = self.solve(method)
        realized = exact.evaluations[heur.k_opt]
        return exact.expected_work_opt - realized, heur, exact
