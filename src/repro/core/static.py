"""Scenario 2, static strategy (paper Section 4.2).

The application is a chain of tasks with IID durations ``X_i ~ D_X``;
a checkpoint may start only at a task boundary. The *static* strategy
fixes, before execution starts, the number ``n`` of tasks to run before
checkpointing, maximizing (Equation (3))::

    E(n) = integral_0^R  x * F_C(R - x) * f_{S_n}(x) dx

where ``S_n = X_1 + ... + X_n`` and ``F_C`` is the CDF of the checkpoint
duration (the paper uses a Normal law truncated to ``[0, inf)``; any law
supported on ``[0, inf)`` is accepted here).

The paper evaluates ``E(n)`` for three task-law families closed under
IID summation — Normal (4.2.1, with the integral extended to ``-inf``
to account for the law's negative tail), Gamma (4.2.2) and Poisson
(4.2.3, a sum over integer work values) — and relaxes ``n`` to a real
``y`` to locate the maximum of the continuous extension, then keeps the
better of ``floor(y_opt)`` / ``ceil(y_opt)``.

:class:`StaticStrategy` implements all three cases through the sum-law
dispatch of :func:`repro.distributions.iid_sum`, plus arbitrary
continuous task laws (integer ``n`` only) through the FFT convolution
fallback — the generality the paper leaves as an extension.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy import integrate, optimize

from .._validation import check_integer, check_positive
from ..distributions import (
    Deterministic,
    Distribution,
    Exponential,
    Gamma,
    Normal,
    Poisson,
    iid_sum,
)

__all__ = ["StaticStrategy", "StaticSolution"]

#: Families for which ``iid_sum`` accepts a real number of summands,
#: enabling the paper's continuous relaxation.
_REAL_N_FAMILIES = (Normal, Gamma, Exponential, Poisson, Deterministic)


def _check_checkpoint_law(law: Distribution) -> Distribution:
    if law.lower < 0.0:
        raise ValueError(
            "checkpoint law must be supported on [0, inf); truncate it first "
            f"(support is [{law.lower}, {law.upper}])"
        )
    return law


@dataclass(frozen=True)
class StaticSolution:
    """Result of the static optimization.

    Attributes
    ----------
    n_opt:
        Optimal integer number of tasks before the checkpoint.
    expected_work_opt:
        ``E(n_opt)``.
    y_opt:
        Maximizer of the continuous relaxation (``nan`` when the task
        law does not support real ``n``).
    relaxed_value:
        Value of the relaxation at ``y_opt`` (``nan`` likewise).
    evaluations:
        ``{n: E(n)}`` for every integer ``n`` examined by the search.
    """

    n_opt: int
    expected_work_opt: float
    y_opt: float = math.nan
    relaxed_value: float = math.nan
    evaluations: dict[int, float] = field(default_factory=dict)

    def summary(self) -> str:
        """One-line human-readable description."""
        parts = [f"n_opt={self.n_opt}", f"E(n_opt)={self.expected_work_opt:.4g}"]
        if not math.isnan(self.y_opt):
            parts.append(f"y_opt={self.y_opt:.4g}")
        return ", ".join(parts)


class StaticStrategy:
    """Static checkpoint-placement solver for IID stochastic workflows.

    Parameters
    ----------
    R:
        Reservation length (> 0).
    task_law:
        IID task-duration law ``D_X``. Must have positive mean. Closed
        families (Normal, Gamma, Exponential, Poisson, Deterministic)
        unlock the continuous relaxation; any other continuous law is
        handled by FFT convolution for integer ``n``.
    checkpoint_law:
        Checkpoint-duration law ``D_C`` supported on ``[0, inf)``
        (the paper's truncated Normal, or any other law).

    Examples
    --------
    The paper's Figure 5 instance (Normal tasks, ``n_opt = 7``):

    >>> from repro.distributions import Normal, truncate
    >>> strat = StaticStrategy(
    ...     R=30.0,
    ...     task_law=Normal(3.0, 0.5),
    ...     checkpoint_law=truncate(Normal(5.0, 0.4), 0.0),
    ... )
    >>> strat.solve().n_opt
    7
    """

    def __init__(self, R: float, task_law: Distribution, checkpoint_law: Distribution) -> None:
        self.R = check_positive(R, "R")
        self.task_law = task_law
        self.checkpoint_law = _check_checkpoint_law(checkpoint_law)
        mean = task_law.mean()
        if mean <= 0.0:
            raise ValueError(f"task law must have positive mean, got {mean}")
        self._task_mean = mean

    # -- building blocks ---------------------------------------------------

    @property
    def supports_real_n(self) -> bool:
        """Whether the continuous relaxation ``y -> E(y)`` is available."""
        return isinstance(self.task_law, _REAL_N_FAMILIES)

    def checkpoint_success_probability(self, slack: np.ndarray | float) -> np.ndarray:
        """``P(C <= slack)``, vectorized; 0 for non-positive slack."""
        slack_arr = np.asarray(slack, dtype=float)
        return np.where(slack_arr > 0.0, self.checkpoint_law.cdf(np.maximum(slack_arr, 0.0)), 0.0)

    def expected_work(self, n: float) -> float:
        """``E(n)`` — Equation (3), for integer or (closed families) real ``n``.

        For continuous sum laws this is the integral of
        ``x * F_C(R - x) * f_{S_n}(x)`` over the sum law's support capped
        at ``R`` (extended below 0 for the Normal family exactly as in
        Section 4.2.1). For discrete laws it is the corresponding sum
        over integer work values ``j <= R``.
        """
        n = check_positive(n, "n")
        if not self.supports_real_n:
            n = check_integer(n, "n", minimum=1)
        sum_law = iid_sum(self.task_law, n)
        if sum_law.is_discrete:
            return self._expected_work_discrete(sum_law)
        if isinstance(sum_law, Deterministic):
            s = sum_law.value
            if s > self.R:
                return 0.0
            return s * float(self.checkpoint_success_probability(self.R - s))
        return self._expected_work_continuous(sum_law)

    def _expected_work_discrete(self, sum_law: Distribution) -> float:
        j = np.arange(0.0, math.floor(self.R) + 1.0)
        weights = self.checkpoint_success_probability(self.R - j)
        return float(np.sum(j * weights * sum_law.pmf(j)))

    def _expected_work_continuous(self, sum_law: Distribution) -> float:
        grid = getattr(sum_law, "_grid", None)
        if grid is not None:
            # Lattice law (FFT fallback): sum on its own grid instead of
            # running adaptive quadrature over a piecewise-linear density.
            pdf = getattr(sum_law, "_pdf_grid")
            step = float(grid[1] - grid[0])
            inside = grid <= self.R
            xs = grid[inside]
            succ = self.checkpoint_success_probability(self.R - xs)
            return float(np.sum(xs * succ * pdf[inside]) * step)

        lo = sum_law.lower
        if not math.isfinite(lo):
            # Normal tail: 12 standard deviations carry < 1e-30 mass.
            lo = sum_law.mean() - 12.0 * sum_law.std()
        lo = min(lo, self.R)
        if lo >= self.R:
            return 0.0

        def integrand(x: float) -> float:
            return (
                x
                * float(self.checkpoint_success_probability(self.R - x))
                * float(sum_law.pdf(x))
            )

        # Give quad the density's center so narrow peaks are not missed.
        center = sum_law.mean()
        points = [center] if lo < center < self.R else None
        val, _ = integrate.quad(integrand, lo, self.R, limit=400, points=points)
        return val

    # -- optimization --------------------------------------------------------

    def _n_search_bound(self) -> int:
        """Upper bound for the integer scan: past this, ``S_n > R`` a.s.-ish."""
        rough = self.R / self._task_mean
        return max(2, math.ceil(3.0 * rough) + 10)

    def relaxed_optimum(self, y_max: float | None = None) -> tuple[float, float]:
        """Maximize the continuous relaxation ``y -> E(y)``.

        Returns ``(y_opt, E(y_opt))``. Only available for closed task
        families (``supports_real_n``).

        The relaxation is scanned on a coarse grid to bracket the global
        maximum, then polished with bounded Brent — the same two-stage
        scheme as the preemptible solver, robust to the relaxation being
        non-concave for extreme parameters.
        """
        if not self.supports_real_n:
            raise NotImplementedError(
                f"continuous relaxation needs a closed task family, got "
                f"{type(self.task_law).__name__}; use solve() (integer scan)"
            )
        if y_max is None:
            y_max = float(self._n_search_bound())
        ys = np.linspace(0.05, y_max, 121)
        vals = np.array([self.expected_work(float(y)) for y in ys])
        i = int(np.argmax(vals))
        lo = ys[max(i - 1, 0)]
        hi = ys[min(i + 1, ys.size - 1)]
        res = optimize.minimize_scalar(
            lambda y: -self.expected_work(float(y)),
            bounds=(lo, hi),
            method="bounded",
            options={"xatol": 1e-6},
        )
        if -res.fun >= vals[i]:
            return float(res.x), float(-res.fun)
        return float(ys[i]), float(vals[i])

    def solve(self, n_max: int | None = None) -> StaticSolution:
        """Find ``n_opt`` maximizing ``E(n)`` over positive integers.

        Uses the paper's recipe when the relaxation is available (locate
        ``y_opt``, compare ``floor`` and ``ceil``) *and* cross-checks
        with a full integer scan up to ``n_max`` so that a multi-modal
        ``E(n)`` cannot mislead the relaxation shortcut; the scan result
        wins if it is strictly better.
        """
        if n_max is None:
            n_max = self._n_search_bound()
        n_max = check_integer(n_max, "n_max", minimum=1)
        evaluations: dict[int, float] = {}

        def ev(n: int) -> float:
            if n not in evaluations:
                evaluations[n] = self.expected_work(n)
            return evaluations[n]

        best_n = 1
        best_val = ev(1)
        for n in range(2, n_max + 1):
            v = ev(n)
            if v > best_val:
                best_n, best_val = n, v
        y_opt = math.nan
        relaxed_value = math.nan
        if self.supports_real_n:
            y_opt, relaxed_value = self.relaxed_optimum(float(n_max))
            for cand in {max(1, math.floor(y_opt)), max(1, math.ceil(y_opt))}:
                v = ev(cand)
                if v > best_val:
                    best_n, best_val = cand, v
        return StaticSolution(
            n_opt=best_n,
            expected_work_opt=best_val,
            y_opt=y_opt,
            relaxed_value=relaxed_value,
            evaluations=dict(sorted(evaluations.items())),
        )
