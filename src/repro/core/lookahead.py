"""k-step lookahead dynamic strategies (library extension).

The paper's dynamic rule (Section 4.3) looks exactly one task ahead:
checkpoint now vs run *one* more task and checkpoint. A natural family
of refinements looks ``k`` tasks ahead::

    E(W_{+k}) = integral (x + w) * F_C(R - w - x) f_{S_k}(x) dx,
    S_k = X_{n+1} + ... + X_{n+k}

and checkpoints iff ``E(W_C) >= max_{1<=k<=h} E(W_{+k})`` for a horizon
``h``. ``h = 1`` is the paper's rule; ``h -> inf`` approaches (but
does not equal — committing to k tasks ignores the option to adapt
midway) the Bellman optimum of
:mod:`repro.core.optimal_stopping`.

Sandwich property (tested): for every work level,

    one-step value <= h-step value <= Bellman V(w).
"""

from __future__ import annotations

import math

import numpy as np
from scipy import integrate, optimize

from .._validation import check_in_range, check_integer, check_positive
from ..distributions import Distribution, iid_sum
from .dynamic import expected_if_checkpoint

__all__ = ["LookaheadStrategy"]


class LookaheadStrategy:
    """Checkpoint/continue rule with a ``horizon``-task lookahead.

    Parameters
    ----------
    R:
        Reservation length.
    task_law:
        IID task-duration law on ``[0, inf)``. Must belong to a family
        with known IID sums (Normal/Gamma/Exponential/Poisson/
        Deterministic) or be continuous (FFT fallback, integer ``k``).
    checkpoint_law:
        Checkpoint-duration law on ``[0, inf)``.
    horizon:
        Maximum number of tasks the rule commits to before its next
        checkpoint (``1`` reproduces the paper's dynamic strategy).
    """

    def __init__(
        self,
        R: float,
        task_law: Distribution,
        checkpoint_law: Distribution,
        *,
        horizon: int = 3,
    ) -> None:
        self.R = check_positive(R, "R")
        if task_law.lower < 0.0 or checkpoint_law.lower < 0.0:
            raise ValueError("task and checkpoint laws must be supported on [0, inf)")
        self.task_law = task_law
        self.checkpoint_law = checkpoint_law
        self.horizon = check_integer(horizon, "horizon", minimum=1)
        self._sum_laws = {k: iid_sum(task_law, k) for k in range(1, self.horizon + 1)}
        self._crossing_cache: float | None = None

    # -- expectations --------------------------------------------------------

    def expected_if_checkpoint(self, w: float) -> float:
        """``E(W_C) = w * F_C(R - w)``."""
        return float(expected_if_checkpoint(self.R, self.checkpoint_law, w))

    def expected_if_continue_k(self, w: float, k: int) -> float:
        """``E(W_{+k})``: run exactly ``k`` more tasks, then checkpoint."""
        k = check_integer(k, "k", minimum=1)
        if k > self.horizon:
            raise ValueError(f"k={k} exceeds horizon={self.horizon}")
        w = check_in_range(w, "w", 0.0, self.R)
        budget = self.R - w
        if budget <= 0.0:
            return 0.0
        sum_law = self._sum_laws[k]
        if sum_law.is_discrete:
            j = np.arange(0.0, math.floor(budget) + 1.0)
            slack = budget - j
            succ = np.where(slack > 0.0, self.checkpoint_law.cdf(np.maximum(slack, 0.0)), 0.0)
            return float(np.sum((j + w) * succ * sum_law.pmf(j)))
        lo = max(sum_law.lower, 0.0)
        hi = min(sum_law.upper, budget)
        if hi <= lo:
            return 0.0

        grid = getattr(sum_law, "_grid", None)
        if grid is not None:
            pdf = getattr(sum_law, "_pdf_grid")
            step = float(grid[1] - grid[0])
            inside = (grid >= 0.0) & (grid <= budget)
            xs = grid[inside]
            slack = budget - xs
            succ = np.where(slack > 0.0, self.checkpoint_law.cdf(np.maximum(slack, 0.0)), 0.0)
            return float(np.sum((xs + w) * succ * pdf[inside]) * step)

        def integrand(x: float) -> float:
            slack = budget - x
            succ = float(self.checkpoint_law.cdf(slack)) if slack > 0.0 else 0.0
            return (x + w) * succ * float(sum_law.pdf(x))

        center = sum_law.mean()
        points = [center] if lo < center < hi else None
        val, _ = integrate.quad(integrand, lo, hi, limit=400, points=points)
        return val

    def best_continuation(self, w: float) -> tuple[int, float]:
        """``(k*, value)`` of the best commit-to-``k``-tasks plan."""
        best_k, best_val = 1, -math.inf
        for k in range(1, self.horizon + 1):
            v = self.expected_if_continue_k(w, k)
            if v > best_val:
                best_k, best_val = k, v
        return best_k, best_val

    def advantage(self, w: float) -> float:
        """``E(W_C) - max_k E(W_{+k})``; positive = checkpoint now."""
        _, cont = self.best_continuation(w)
        return self.expected_if_checkpoint(w) - cont

    def should_checkpoint(self, w: float) -> bool:
        """Checkpoint iff no lookahead plan beats checkpointing now.

        Same boundary convention as
        :meth:`repro.core.dynamic.DynamicStrategy.should_checkpoint`:
        at exactly ``w == crossing_point()`` the rule checkpoints, even
        when the advantage at the root evaluates to a negative
        floating-point residual.
        """
        if self._crossing_cache is not None and w == self._crossing_cache:
            return True
        return self.advantage(w) >= 0.0

    def pin_crossing(self, w_int: float) -> None:
        """Install a precomputed crossing point (see
        :meth:`repro.core.dynamic.DynamicStrategy.pin_crossing`)."""
        self._crossing_cache = float(w_int)

    # -- threshold -------------------------------------------------------------

    def crossing_point(self, scan_points: int = 129) -> float:
        """First work level where checkpointing wins under the rule."""
        if self._crossing_cache is not None:
            return self._crossing_cache
        ws = np.linspace(0.0, self.R, scan_points)
        adv = np.array([self.advantage(float(wi)) for wi in ws])
        crossing = self.R
        if adv[0] >= 0.0:
            crossing = 0.0
        else:
            sign_change = np.nonzero((adv[:-1] < 0.0) & (adv[1:] >= 0.0))[0]
            if sign_change.size:
                i = int(sign_change[0])
                crossing = float(
                    optimize.brentq(self.advantage, ws[i], ws[i + 1], xtol=1e-9)
                )
        self._crossing_cache = crossing
        return crossing
