"""Uniform policy interfaces over the paper's strategies.

Two families of policies mirror the paper's two scenarios:

* :class:`MarginPolicy` (Section 3): picks the margin ``X`` for a
  preemptible application — worst-case (:class:`PessimisticMargin`),
  fixed (:class:`FixedMargin`), or optimal (:class:`OptimalMargin`).
* :class:`WorkflowPolicy` (Section 4): decides *checkpoint now or run
  another task* at each task boundary — after a fixed count
  (:class:`StaticCountPolicy`), after the statically-optimal count
  (:class:`StaticOptimalPolicy`), by the paper's one-step comparison
  (:class:`DynamicPolicy`), or by full optimal stopping
  (:class:`OptimalStoppingPolicy`, a library extension).

Policies carry optional *fast-path* hooks (``fixed_task_count`` /
``work_threshold``) that the vectorized Monte-Carlo engine exploits;
the sequential engine only needs ``should_checkpoint``.
"""

from __future__ import annotations

import abc
import math
from typing import Optional

import numpy as np

from .._validation import check_integer, check_nonnegative
from ..distributions import Distribution
from . import preemptible
from .dynamic import DynamicStrategy
from .failures import FailureAwareDynamicStrategy, WindowPredictor, effective_rates
from .optimal_stopping import OptimalStoppingSolver
from .static import StaticStrategy

__all__ = [
    "MarginPolicy",
    "FixedMargin",
    "PessimisticMargin",
    "OptimalMargin",
    "WorkflowPolicy",
    "StaticCountPolicy",
    "StaticOptimalPolicy",
    "DynamicPolicy",
    "FailureAwareDynamicPolicy",
    "RestartPolicy",
    "OptimalStoppingPolicy",
]


# ---------------------------------------------------------------------------
# Scenario 1: preemptible applications
# ---------------------------------------------------------------------------


class MarginPolicy(abc.ABC):
    """Chooses the margin ``X`` (checkpoint start = ``R - X``)."""

    name: str = "margin"

    @abc.abstractmethod
    def margin(self, R: float, checkpoint_law: Distribution) -> float:
        """Return the margin for a reservation of length ``R``."""


class FixedMargin(MarginPolicy):
    """Always uses a user-supplied margin (e.g. a guessed mean + slack)."""

    def __init__(self, X: float) -> None:
        self.X = check_nonnegative(X, "X")
        self.name = f"fixed({self.X:g})"

    def margin(self, R: float, checkpoint_law: Distribution) -> float:
        if self.X > R:
            raise ValueError(f"fixed margin {self.X} exceeds the reservation {R}")
        return self.X


class PessimisticMargin(MarginPolicy):
    """The paper's risk-free baseline: ``X = b = C_max`` (never fails)."""

    name = "pessimistic"

    def margin(self, R: float, checkpoint_law: Distribution) -> float:
        b = checkpoint_law.upper
        if not math.isfinite(b):
            raise ValueError(
                "pessimistic margin needs a bounded checkpoint law (finite C_max)"
            )
        return float(b)


class OptimalMargin(MarginPolicy):
    """The paper's optimal strategy: maximize ``E(W(X))`` (Section 3.2)."""

    name = "optimal"

    def margin(self, R: float, checkpoint_law: Distribution) -> float:
        return preemptible.solve(R, checkpoint_law).x_opt


# ---------------------------------------------------------------------------
# Scenario 2: stochastic linear workflows
# ---------------------------------------------------------------------------


class WorkflowPolicy(abc.ABC):
    """Per-task-boundary checkpoint decision rule.

    Lifecycle: the engine calls :meth:`reset` at the start of each
    reservation, then :meth:`should_checkpoint` after every completed
    task with the accumulated work and task count.
    """

    name: str = "workflow"

    def reset(self, R: float) -> None:
        """Prepare for a (new) reservation of length ``R``."""

    @abc.abstractmethod
    def should_checkpoint(self, work_done: float, tasks_done: int) -> bool:
        """True to checkpoint now, False to run one more task."""

    # Fast-path hooks for the vectorized Monte-Carlo engine and the
    # reservation runners -----------------------------------------------

    #: True when ``should_checkpoint(w, n)`` is *exactly* the comparison
    #: ``w >= work_threshold(R)`` for every boundary — runners may then
    #: inline the threshold and skip the method call per task.
    threshold_is_exact: bool = False

    def fixed_task_count(self, R: float) -> Optional[int]:
        """Task count after which this policy checkpoints, if static."""
        return None

    def work_threshold(self, R: float) -> Optional[float]:
        """Work level above which this policy checkpoints, if threshold-like."""
        return None


class StaticCountPolicy(WorkflowPolicy):
    """Checkpoint after exactly ``n`` tasks (user-chosen count)."""

    def __init__(self, n: int) -> None:
        self.n = check_integer(n, "n", minimum=1)
        self.name = f"static({self.n})"

    def should_checkpoint(self, work_done: float, tasks_done: int) -> bool:
        return tasks_done >= self.n

    def fixed_task_count(self, R: float) -> Optional[int]:
        return self.n


class StaticOptimalPolicy(WorkflowPolicy):
    """The paper's static strategy: checkpoint after ``n_opt`` tasks.

    ``n_opt`` is computed lazily per reservation length (Section 4.2)
    and cached, so a policy instance can serve a whole campaign of
    equal-length reservations at the cost of one solve.
    """

    name = "static-optimal"

    def __init__(self, task_law: Distribution, checkpoint_law: Distribution) -> None:
        self.task_law = task_law
        self.checkpoint_law = checkpoint_law
        self._cache: dict[float, int] = {}
        self._n_current: Optional[int] = None

    def _n_opt(self, R: float) -> int:
        if R not in self._cache:
            strat = StaticStrategy(R, self.task_law, self.checkpoint_law)
            self._cache[R] = strat.solve().n_opt
        return self._cache[R]

    def reset(self, R: float) -> None:
        self._n_current = self._n_opt(R)

    def should_checkpoint(self, work_done: float, tasks_done: int) -> bool:
        if self._n_current is None:
            raise RuntimeError("reset(R) must be called before decisions")
        return tasks_done >= self._n_current

    def fixed_task_count(self, R: float) -> Optional[int]:
        return self._n_opt(R)


class DynamicPolicy(WorkflowPolicy):
    """The paper's dynamic strategy (Section 4.3).

    At each boundary, checkpoints iff ``E(W_C) >= E(W_+1)``. The
    decision is served from the precomputed crossing point ``W_int``
    when ``exact=False`` (default; the advantage is single-crossing for
    every law family the paper instantiates) or by evaluating both
    expectations at the observed work when ``exact=True``.
    """

    name = "dynamic"

    def __init__(
        self,
        task_law: Distribution,
        checkpoint_law: Distribution,
        *,
        exact: bool = False,
    ) -> None:
        self.task_law = task_law
        self.checkpoint_law = checkpoint_law
        self.exact = exact
        # Threshold mode *is* the comparison w >= W_int; exact mode
        # re-evaluates the advantage and may only be assumed equivalent
        # when the advantage is single-crossing, so it never advertises.
        self.threshold_is_exact = not exact
        self._strategies: dict[float, DynamicStrategy] = {}
        self._current: Optional[DynamicStrategy] = None

    def _strategy(self, R: float) -> DynamicStrategy:
        if R not in self._strategies:
            self._strategies[R] = DynamicStrategy(R, self.task_law, self.checkpoint_law)
        return self._strategies[R]

    def reset(self, R: float) -> None:
        self._current = self._strategy(R)

    def should_checkpoint(self, work_done: float, tasks_done: int) -> bool:
        if self._current is None:
            raise RuntimeError("reset(R) must be called before decisions")
        if self.exact:
            return self._current.should_checkpoint(work_done)
        return work_done >= self._current.crossing_point()

    def work_threshold(self, R: float) -> Optional[float]:
        return self._strategy(R).crossing_point()


class FailureAwareDynamicPolicy(WorkflowPolicy):
    """The dynamic rule under fail-stop strikes and prediction windows.

    Wraps :class:`repro.core.failures.FailureAwareDynamicStrategy`: at
    every boundary the linear advantage ``s k(b) - m(b)`` (un-banked
    work ``s``, remaining budget ``b``) decides checkpoint-vs-gamble
    under the strike law. With a :class:`WindowPredictor`, two
    coefficient curves are precomputed — one per effective hazard
    (in-window ``p / width``, out-of-window ``(1-r) lam / (1 - r lam
    width / p)``) — and the host (simulator or
    :class:`repro.runtime.ReservationRunner`) flips the active curve
    via :meth:`set_window` as windows open and close. A decision that
    checkpoints *because* of the window (the out-of-window curve would
    have gambled) counts as proactive.

    ``failure_rate = 0`` without a predictor is decision-equivalent to
    :class:`DynamicPolicy` (the coefficients reduce to the paper's
    failure-free expectations).
    """

    name = "failure-aware-dynamic"
    # The decision depends on two interpolated coefficients and the
    # window state — never a single static work threshold.
    threshold_is_exact = False

    def __init__(
        self,
        task_law: Distribution,
        checkpoint_law: Distribution,
        failure_rate: float,
        *,
        predictor: Optional[WindowPredictor] = None,
        grid_points: int = 129,
    ) -> None:
        self.task_law = task_law
        self.checkpoint_law = checkpoint_law
        self.failure_rate = check_nonnegative(failure_rate, "failure_rate")
        self.predictor = predictor
        self.grid_points = check_integer(grid_points, "grid_points", minimum=2)
        self.rate_in, self.rate_out = effective_rates(self.failure_rate, predictor)
        self._curves: dict[bool, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self._covered_R = 0.0
        self._b0: Optional[float] = None
        self._in_window = False
        #: Checkpoints taken only because a prediction window was open.
        self.proactive_decisions = 0

    def _build(self, R: float) -> None:
        modes = {False: self.rate_out}
        if self.predictor is not None:
            modes[True] = self.rate_in
        for in_window, rate in modes.items():
            strat = FailureAwareDynamicStrategy(
                R, self.task_law, self.checkpoint_law, rate
            )
            self._curves[in_window] = strat.decision_coefficients(points=self.grid_points)
        self._covered_R = R

    def reset(self, R: float) -> None:
        if R > self._covered_R:
            self._build(R)
        self._b0 = R

    def set_window(self, active: bool) -> None:
        """Host notification: a prediction window opened (``True``) or
        closed (``False``). No-op without a predictor."""
        self._in_window = bool(active) and self.predictor is not None

    def _decide(self, in_window: bool, work_done: float, budget: float) -> bool:
        b_grid, k, m = self._curves[in_window if in_window in self._curves else False]
        kb = float(np.interp(budget, b_grid, k))
        mb = float(np.interp(budget, b_grid, m))
        return work_done * kb >= mb

    def should_checkpoint(self, work_done: float, tasks_done: int) -> bool:
        if self._b0 is None:
            raise RuntimeError("reset(R) must be called before decisions")
        budget = max(self._b0 - work_done, 0.0)
        decision = self._decide(self._in_window, work_done, budget)
        if decision and self._in_window and not self._decide(False, work_done, budget):
            self.proactive_decisions += 1
        return decision


class RestartPolicy(WorkflowPolicy):
    """Restart-without-checkpoint (Sodre's competing strategy).

    Never checkpoints mid-reservation: it runs straight through and
    takes a single checkpoint once the remaining budget falls to
    ``margin`` (the paper's final-only schedule). A strike therefore
    loses *everything* since the reservation start and the application
    re-runs from scratch — cheap when tasks are short or strikes rare,
    and increasingly competitive as the task law's tail fattens (a
    restart redraws the durations instead of replaying them).
    """

    threshold_is_exact = True

    def __init__(self, margin: float) -> None:
        self.margin = check_nonnegative(margin, "margin")
        self.name = f"restart({self.margin:g})"
        self._b0: Optional[float] = None

    def reset(self, R: float) -> None:
        self._b0 = R

    def should_checkpoint(self, work_done: float, tasks_done: int) -> bool:
        if self._b0 is None:
            raise RuntimeError("reset(R) must be called before decisions")
        return work_done >= self._b0 - self.margin

    def work_threshold(self, R: float) -> Optional[float]:
        return max(R - self.margin, 0.0)


class OptimalStoppingPolicy(WorkflowPolicy):
    """Full Bellman optimal-stopping rule (library extension).

    Checkpoints once the accumulated work enters the stopping region of
    :class:`repro.core.optimal_stopping.OptimalStoppingSolver`.
    """

    name = "optimal-stopping"
    threshold_is_exact = True

    def __init__(
        self,
        task_law: Distribution,
        checkpoint_law: Distribution,
        *,
        grid_points: int = 1601,
    ) -> None:
        self.task_law = task_law
        self.checkpoint_law = checkpoint_law
        self.grid_points = check_integer(grid_points, "grid_points", minimum=8)
        self._thresholds: dict[float, float] = {}
        self._threshold_current: Optional[float] = None

    def _threshold(self, R: float) -> float:
        if R not in self._thresholds:
            solver = OptimalStoppingSolver(
                R, self.task_law, self.checkpoint_law, grid_points=self.grid_points
            )
            self._thresholds[R] = solver.solve().threshold
        return self._thresholds[R]

    def reset(self, R: float) -> None:
        self._threshold_current = self._threshold(R)

    def should_checkpoint(self, work_done: float, tasks_done: int) -> bool:
        if self._threshold_current is None:
            raise RuntimeError("reset(R) must be called before decisions")
        return work_done >= self._threshold_current

    def work_threshold(self, R: float) -> Optional[float]:
        return self._threshold(R)
