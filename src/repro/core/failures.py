"""Fail-stop errors inside the reservation (paper's future work).

The paper deliberately studies *failure-free* platforms — "dealing with
the occurrence of fail-stop errors within fixed-size reservations would
be an interesting direction for future work" (Section 5). This module
takes that step: exponential fail-stop errors of rate ``lam`` strike
during the reservation; un-checkpointed work is lost on each strike and
the application restarts (after a recovery) from its last completed
checkpoint.

Strategies compared (simulated in
:mod:`repro.simulation.failures`, analyzed here):

* **final-only** — the paper's model: work until ``R - X``, checkpoint
  once. With failures, the reservation yields work only if no error
  strikes before the checkpoint completes.
* **periodic** — checkpoint every ``T`` seconds of work (plus the
  natural final checkpoint when the margin is reached). The classical
  period choices are provided:
  :func:`young_period` (Young [26]: ``sqrt(2 C / lam)``) and
  :func:`daly_period` (Daly [4]'s higher-order refinement).

Analytic helpers here give the expected saved work of the final-only
strategy under failures (closed form) and the classic first-order
waste model for periodic checkpointing, so simulations have an
analytic sanity anchor.
"""

from __future__ import annotations

import math

from .._validation import check_nonnegative, check_positive
from ..distributions import Distribution

__all__ = [
    "young_period",
    "daly_period",
    "final_only_expected_work",
    "periodic_waste_rate",
]


def young_period(checkpoint_seconds: float, failure_rate: float) -> float:
    """Young's first-order optimal checkpoint period ``sqrt(2 C / lam)``.

    Parameters
    ----------
    checkpoint_seconds:
        (Mean) checkpoint duration ``C``.
    failure_rate:
        Fail-stop rate ``lam`` (errors per second; MTBF = ``1 / lam``).
    """
    C = check_positive(checkpoint_seconds, "checkpoint_seconds")
    lam = check_positive(failure_rate, "failure_rate")
    return math.sqrt(2.0 * C / lam)


def daly_period(checkpoint_seconds: float, failure_rate: float) -> float:
    """Daly's higher-order period estimate.

    ``T = sqrt(2 C M) * (1 + (1/3) sqrt(C / (2M)) + (C / M) / 9) - C``
    with ``M = 1 / lam``, valid for ``C < 2M`` (falls back to Young's
    period beyond).
    """
    C = check_positive(checkpoint_seconds, "checkpoint_seconds")
    lam = check_positive(failure_rate, "failure_rate")
    M = 1.0 / lam
    if C >= 2.0 * M:
        return young_period(C, lam)
    root = math.sqrt(2.0 * C * M)
    return root * (1.0 + math.sqrt(C / (2.0 * M)) / 3.0 + (C / M) / 9.0) - C


def final_only_expected_work(
    R: float,
    checkpoint_law: Distribution,
    margin: float,
    failure_rate: float,
) -> float:
    """Expected saved work of the paper's strategy under failures.

    Work ``R - X`` is saved iff (i) the checkpoint fits (``C <= X``)
    and (ii) no error strikes before the checkpoint completes, i.e.
    within ``[0, R - X + C]``. With ``C`` independent of the
    exponential failure process::

        E(W) = (R - X) * E[ 1{C <= X} * exp(-lam (R - X + C)) ]

    computed by quadrature over the checkpoint law. ``failure_rate = 0``
    reduces exactly to Equation (1).
    """
    R = check_positive(R, "R")
    margin = check_nonnegative(margin, "margin")
    if margin > R:
        raise ValueError(f"margin {margin} exceeds reservation {R}")
    lam = check_nonnegative(failure_rate, "failure_rate")
    if lam == 0.0:
        slack = margin
        return (R - margin) * float(checkpoint_law.cdf(slack))
    from scipy import integrate

    lo = checkpoint_law.lower
    hi = min(checkpoint_law.upper, margin)
    if hi <= lo:
        return 0.0

    def integrand(c: float) -> float:
        return math.exp(-lam * (R - margin + c)) * float(checkpoint_law.pdf(c))

    val, _ = integrate.quad(integrand, lo, hi, limit=200)
    return (R - margin) * val


def periodic_waste_rate(
    period: float, checkpoint_seconds: float, failure_rate: float, recovery_seconds: float = 0.0
) -> float:
    """First-order fraction of time wasted by periodic checkpointing.

    The classical waste model behind Young's formula::

        waste(T) = C / (T + C) + lam * (R_rec + (T + C) / 2)

    (checkpoint overhead + expected rework per failure). Minimized near
    ``T = sqrt(2 C / lam)``; used as the analytic anchor for the
    failure-sweep bench. Values above 1 mean no progress is possible.
    """
    T = check_positive(period, "period")
    C = check_positive(checkpoint_seconds, "checkpoint_seconds")
    lam = check_nonnegative(failure_rate, "failure_rate")
    rec = check_nonnegative(recovery_seconds, "recovery_seconds")
    return C / (T + C) + lam * (rec + 0.5 * (T + C))
