"""Fail-stop errors inside the reservation (paper's future work).

The paper deliberately studies *failure-free* platforms — "dealing with
the occurrence of fail-stop errors within fixed-size reservations would
be an interesting direction for future work" (Section 5). This module
takes that step: exponential fail-stop errors of rate ``lam`` strike
during the reservation; un-checkpointed work is lost on each strike and
the application restarts (after a recovery) from its last completed
checkpoint.

Strategies compared (simulated in
:mod:`repro.simulation.failures`, analyzed here):

* **final-only** — the paper's model: work until ``R - X``, checkpoint
  once. With failures, the reservation yields work only if no error
  strikes before the checkpoint completes.
* **periodic** — checkpoint every ``T`` seconds of work (plus the
  natural final checkpoint when the margin is reached). The classical
  period choices are provided:
  :func:`young_period` (Young [26]: ``sqrt(2 C / lam)``) and
  :func:`daly_period` (Daly [4]'s higher-order refinement).

Analytic helpers here give the expected saved work of the final-only
strategy under failures (closed form) and the classic first-order
waste model for periodic checkpointing, so simulations have an
analytic sanity anchor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np
from numpy.typing import ArrayLike, NDArray

from .._validation import (
    as_generator,
    check_in_range,
    check_integer,
    check_nonnegative,
    check_positive,
    check_probability,
)
from ..distributions import Distribution, RngLike

__all__ = [
    "young_period",
    "daly_period",
    "final_only_expected_work",
    "periodic_waste_rate",
    "PredictionWindow",
    "WindowPredictor",
    "effective_rates",
    "expected_if_checkpoint_failures",
    "expected_if_continue_failures",
    "FailureAwareDynamicStrategy",
    "restart_expected_work",
    "periodic_expected_work",
]


def young_period(checkpoint_seconds: float, failure_rate: float) -> float:
    """Young's first-order optimal checkpoint period ``sqrt(2 C / lam)``.

    Parameters
    ----------
    checkpoint_seconds:
        (Mean) checkpoint duration ``C``.
    failure_rate:
        Fail-stop rate ``lam`` (errors per second; MTBF = ``1 / lam``).
    """
    C = check_positive(checkpoint_seconds, "checkpoint_seconds")
    lam = check_positive(failure_rate, "failure_rate")
    return math.sqrt(2.0 * C / lam)


def daly_period(checkpoint_seconds: float, failure_rate: float) -> float:
    """Daly's higher-order period estimate.

    ``T = sqrt(2 C M) * (1 + (1/3) sqrt(C / (2M)) + (C / M) / 9) - C``
    with ``M = 1 / lam``, valid for ``C < 2M`` (falls back to Young's
    period beyond).
    """
    C = check_positive(checkpoint_seconds, "checkpoint_seconds")
    lam = check_positive(failure_rate, "failure_rate")
    M = 1.0 / lam
    if C >= 2.0 * M:
        return young_period(C, lam)
    root = math.sqrt(2.0 * C * M)
    return root * (1.0 + math.sqrt(C / (2.0 * M)) / 3.0 + (C / M) / 9.0) - C


def final_only_expected_work(
    R: float,
    checkpoint_law: Distribution,
    margin: float,
    failure_rate: float,
) -> float:
    """Expected saved work of the paper's strategy under failures.

    Work ``R - X`` is saved iff (i) the checkpoint fits (``C <= X``)
    and (ii) no error strikes before the checkpoint completes, i.e.
    within ``[0, R - X + C]``. With ``C`` independent of the
    exponential failure process::

        E(W) = (R - X) * E[ 1{C <= X} * exp(-lam (R - X + C)) ]

    computed by quadrature over the checkpoint law. ``failure_rate = 0``
    reduces exactly to Equation (1).
    """
    R = check_positive(R, "R")
    margin = check_nonnegative(margin, "margin")
    if margin > R:
        raise ValueError(f"margin {margin} exceeds reservation {R}")
    lam = check_nonnegative(failure_rate, "failure_rate")
    if lam == 0.0:
        slack = margin
        return (R - margin) * float(checkpoint_law.cdf(slack))
    from scipy import integrate

    lo = checkpoint_law.lower
    hi = min(checkpoint_law.upper, margin)
    if hi <= lo:
        return 0.0

    def integrand(c: float) -> float:
        return math.exp(-lam * (R - margin + c)) * float(checkpoint_law.pdf(c))

    val, _ = integrate.quad(integrand, lo, hi, limit=200)
    return (R - margin) * val


def periodic_waste_rate(
    period: float, checkpoint_seconds: float, failure_rate: float, recovery_seconds: float = 0.0
) -> float:
    """First-order fraction of time wasted by periodic checkpointing.

    The classical waste model behind Young's formula::

        waste(T) = C / (T + C) + lam * (R_rec + (T + C) / 2)

    (checkpoint overhead + expected rework per failure). Minimized near
    ``T = sqrt(2 C / lam)``; used as the analytic anchor for the
    failure-sweep bench. Values above 1 mean no progress is possible.
    """
    T = check_positive(period, "period")
    C = check_positive(checkpoint_seconds, "checkpoint_seconds")
    lam = check_nonnegative(failure_rate, "failure_rate")
    rec = check_nonnegative(recovery_seconds, "recovery_seconds")
    return C / (T + C) + lam * (rec + 0.5 * (T + C))


# ---------------------------------------------------------------------------
# Checkpoint-success curve under the strike law
# ---------------------------------------------------------------------------


class _SuccessCurve:
    """``L(s) = E[ 1{C <= s} * exp(-lam * C) ]`` as a fast callable.

    This is the failure-aware generalization of the checkpoint-fit
    probability ``F_C(s)``: the checkpoint must both fit in the
    remaining slack ``s`` *and* survive the exponential strike process
    for its own duration. ``lam = 0`` reduces exactly to ``F_C``.

    Built once per strategy over ``[0, cap]``: discrete laws use exact
    atom sums, continuous laws a dense trapezoid accumulation of
    ``exp(-lam c) f_C(c)`` served by linear interpolation.
    """

    def __init__(
        self, checkpoint_law: Distribution, lam: float, cap: float, points: int = 4096
    ) -> None:
        self.law = checkpoint_law
        self.lam = lam
        self.cap = cap
        self._atoms: Optional[NDArray[np.float64]] = None
        self._atom_cum: Optional[NDArray[np.float64]] = None
        self._grid: Optional[NDArray[np.float64]] = None
        self._cum: Optional[NDArray[np.float64]] = None
        if lam == 0.0:
            return  # served directly from the law's cdf
        if checkpoint_law.is_discrete:
            hi = min(float(checkpoint_law.upper), cap)
            if hi < 0.0:
                hi = 0.0
            ks = np.arange(0.0, math.floor(hi) + 1.0)
            wts = np.asarray(checkpoint_law.pmf(ks), dtype=float) * np.exp(-lam * ks)
            self._atoms = ks
            self._atom_cum = np.cumsum(wts)
            return
        lo = max(float(checkpoint_law.lower), 0.0)
        hi = min(float(checkpoint_law.upper), cap)
        if hi <= lo:
            self._grid = np.array([0.0, max(cap, 1.0)])
            self._cum = np.zeros(2)
            return
        grid = np.linspace(lo, hi, points)
        vals = np.exp(-lam * grid) * np.asarray(self.law.pdf(grid), dtype=float)
        steps = np.diff(grid) * 0.5 * (vals[1:] + vals[:-1])
        self._grid = grid
        self._cum = np.concatenate([[0.0], np.cumsum(steps)])

    def __call__(self, s: ArrayLike) -> NDArray[np.float64]:
        s_arr = np.asarray(s, dtype=float)
        if self.lam == 0.0:
            out = np.where(
                s_arr > 0.0,
                np.asarray(self.law.cdf(np.maximum(s_arr, 0.0)), dtype=float),
                0.0,
            )
            return np.asarray(out, dtype=float)
        if self._atoms is not None:
            assert self._atom_cum is not None
            idx = np.searchsorted(self._atoms, s_arr, side="right")
            cum = np.concatenate([[0.0], self._atom_cum])
            return np.asarray(cum[idx], dtype=float)
        assert self._grid is not None and self._cum is not None
        return np.asarray(
            np.interp(s_arr, self._grid, self._cum, left=0.0, right=self._cum[-1]),
            dtype=float,
        )


def expected_if_checkpoint_failures(
    R: float,
    checkpoint_law: Distribution,
    w: ArrayLike,
    failure_rate: float,
) -> NDArray[np.float64]:
    """Failure-aware ``E(W_C) = w * E[1{C <= R - w} exp(-lam C)]``.

    Checkpointing now banks ``w`` iff the checkpoint fits in the
    remaining slack *and* no strike lands during the write (a strike
    mid-write tears the snapshot and the un-banked work is lost).
    ``failure_rate = 0`` reduces exactly to the paper's
    :func:`repro.core.dynamic.expected_if_checkpoint`.
    """
    R = check_positive(R, "R")
    lam = check_nonnegative(failure_rate, "failure_rate")
    w_arr = np.asarray(w, dtype=float)
    curve = _SuccessCurve(checkpoint_law, lam, R)
    return w_arr * curve(R - w_arr)


def expected_if_continue_failures(
    R: float,
    task_law: Distribution,
    checkpoint_law: Distribution,
    w: float,
    failure_rate: float,
) -> float:
    """Failure-aware ``E(W_+1)``: gamble on one more task, then checkpoint.

    The extra task of length ``x`` must itself survive the strike
    process (factor ``exp(-lam x)``), and the checkpoint that follows
    must fit in ``R - w - x`` and survive its own duration::

        E(W_+1) = E_X[ exp(-lam X) * (w + X) * L(R - w - X) ]

    with ``L`` the survival-weighted fit probability of
    :func:`expected_if_checkpoint_failures`. ``failure_rate = 0``
    reduces exactly to the paper's Section 4.3 expression.
    """
    R = check_positive(R, "R")
    w = check_in_range(w, "w", 0.0, R)
    lam = check_nonnegative(failure_rate, "failure_rate")
    budget = R - w
    if budget <= 0.0:
        return 0.0
    curve = _SuccessCurve(checkpoint_law, lam, R)
    if task_law.is_discrete:
        j = np.arange(0.0, math.floor(budget) + 1.0)
        success = curve(budget - j)
        return float(np.sum(np.exp(-lam * j) * (j + w) * success * task_law.pmf(j)))

    from scipy import integrate

    lo = max(float(task_law.lower), 0.0)
    hi = min(float(task_law.upper), budget)
    if hi <= lo:
        return 0.0

    def integrand(x: float) -> float:
        success = float(curve(budget - x))
        return math.exp(-lam * x) * (x + w) * success * float(task_law.pdf(x))

    center = task_law.mean()
    points = [center] if lo < center < hi else None
    val, _ = integrate.quad(integrand, lo, hi, limit=400, points=points)
    return float(val)


class FailureAwareDynamicStrategy:
    """The dynamic rule under exponential fail-stop strikes.

    Extends :class:`repro.core.dynamic.DynamicStrategy` with a strike
    rate ``lam``: both expectations are discounted by the probability
    that no strike voids them (task and checkpoint must each survive).
    At ``failure_rate = 0`` every quantity reduces exactly to the
    paper's failure-free rule.

    Two coordinate systems are exposed:

    * **paper coordinates** — work ``w`` done since the reservation
      start, slack ``R - w`` remaining; :meth:`crossing_point` gives the
      Figure 8-10 style threshold ``W_int``.
    * **segment coordinates** — un-banked work ``s`` with ``b`` seconds
      of budget remaining. The advantage is *linear* in ``s``, so the
      decision boundary ``s*(b)`` has the closed form ``m(b) / k(b)``
      (:meth:`segment_threshold`); this is what the bank-and-continue
      simulator and the runtime use, and what a prediction window
      modulates by swapping the effective rate.
    """

    def __init__(
        self,
        R: float,
        task_law: Distribution,
        checkpoint_law: Distribution,
        failure_rate: float,
    ) -> None:
        from .dynamic import _check_laws

        self.R = check_positive(R, "R")
        _check_laws(task_law, checkpoint_law)
        self.task_law = task_law
        self.checkpoint_law = checkpoint_law
        self.failure_rate = check_nonnegative(failure_rate, "failure_rate")
        self._curve = _SuccessCurve(checkpoint_law, self.failure_rate, self.R)
        self._crossing_cache: Optional[float] = None

    # -- expectations (paper coordinates) --------------------------------

    def expected_if_checkpoint(self, w: ArrayLike) -> NDArray[np.float64]:
        """``E(W_C)`` at accumulated work ``w`` (vectorized)."""
        w_arr = np.asarray(w, dtype=float)
        return w_arr * self._curve(self.R - w_arr)

    def expected_if_continue(self, w: float) -> float:
        """``E(W_+1)`` at accumulated work ``w``."""
        k, m = self._coefficients(self.R - w)
        lb = float(self._curve(self.R - w))
        return w * (lb - k) + m

    def advantage(self, w: float) -> float:
        """``E(W_C) - E(W_+1)``: positive when checkpointing now wins."""
        k, m = self._coefficients(self.R - w)
        return w * k - m

    def should_checkpoint(self, w: float) -> bool:
        """Checkpoint iff ``E(W_C) >= E(W_+1)`` (ties checkpoint)."""
        return self.advantage(w) >= 0.0

    def crossing_point(self, scan_points: int = 129) -> float:
        """Failure-aware ``W_int``: sign-change scan plus Brent refine,
        mirroring :meth:`repro.core.dynamic.DynamicStrategy.crossing_point`
        (``0`` when checkpointing always wins, ``R`` when it never does).
        """
        if self._crossing_cache is not None:
            return self._crossing_cache
        from scipy import optimize

        ws = np.linspace(0.0, self.R, scan_points)
        adv = np.array([self.advantage(float(wi)) for wi in ws])
        crossing = self.R
        if adv[0] >= 0.0:
            crossing = 0.0
        else:
            sign_change = np.nonzero((adv[:-1] < 0.0) & (adv[1:] >= 0.0))[0]
            if sign_change.size:
                i = int(sign_change[0])
                crossing = float(
                    optimize.brentq(self.advantage, ws[i], ws[i + 1], xtol=1e-10)
                )
        self._crossing_cache = crossing
        return crossing

    # -- segment coordinates ---------------------------------------------

    def _coefficients(self, b: float) -> tuple[float, float]:
        """``(k(b), m(b))`` of the linear advantage ``s k(b) - m(b)``.

        ``k(b) = L(b) - E_X[exp(-lam X) L(b - X)]`` weighs banking the
        current work against carrying it through one more task;
        ``m(b) = E_X[exp(-lam X) X L(b - X)]`` is the new work the extra
        task would bank. Both integrals over the task law restricted to
        ``[0, b]``.
        """
        if b <= 0.0:
            return 0.0, 0.0
        lam = self.failure_rate
        lb = float(self._curve(b))
        task = self.task_law
        if task.is_discrete:
            j = np.arange(0.0, math.floor(b) + 1.0)
            weight = np.exp(-lam * j) * np.asarray(task.pmf(j), dtype=float)
            success = self._curve(b - j)
            carried = float(np.sum(weight * success))
            gained = float(np.sum(weight * j * success))
            return lb - carried, gained
        lo = max(float(task.lower), 0.0)
        hi = min(float(task.upper), b)
        if hi <= lo:
            return lb, 0.0
        grid = np.linspace(lo, hi, 1025)
        weight = np.exp(-lam * grid) * np.asarray(task.pdf(grid), dtype=float)
        success = self._curve(b - grid)
        carried = float(np.trapezoid(weight * success, grid))
        gained = float(np.trapezoid(weight * grid * success, grid))
        return lb - carried, gained

    def segment_threshold(self, b: float) -> float:
        """``s*(b)``: un-banked work above which checkpointing wins with
        ``b`` seconds of budget left. Exact (the advantage is linear in
        the un-banked work). ``inf`` where continuing always wins (deep
        budgets: ``k`` vanishes but another task still banks new work);
        ``0`` in the degenerate tail where nothing can be banked (both
        expectations vanish; ties checkpoint).

        Prefer :meth:`decision_coefficients` for vectorized decisions —
        near the ``k -> 0`` boundary the ratio is numerically wild while
        the sign of ``s k(b) - m(b)`` stays robust.
        """
        k, m = self._coefficients(b)
        if k <= 1e-12:
            return math.inf if m > 1e-12 else 0.0
        return m / k

    def decision_coefficients(
        self, budgets: ArrayLike | None = None, points: int = 129
    ) -> tuple[NDArray[np.float64], NDArray[np.float64], NDArray[np.float64]]:
        """``(budgets, k, m)`` sampled on a budget grid.

        Checkpoint at un-banked work ``s`` with budget ``b`` iff
        ``s * k(b) >= m(b)``. Both coefficients are smooth and bounded
        (unlike the ratio ``s*``), so linear interpolation of the pair
        is safe for the simulator / runtime fast path.
        """
        if budgets is None:
            b_arr = np.linspace(0.0, self.R, check_integer(points, "points", minimum=2))
        else:
            b_arr = np.asarray(budgets, dtype=float)
        pairs = [self._coefficients(float(b)) for b in b_arr]
        k = np.array([p[0] for p in pairs])
        m = np.array([p[1] for p in pairs])
        return b_arr, k, m


# ---------------------------------------------------------------------------
# Prediction windows (Aupy/Robert/Vivien-style predictor model)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PredictionWindow:
    """One predicted-failure window ``[start, end]``.

    ``true_positive`` marks windows generated by an actual failure;
    false alarms carry no failure and cost only over-eager checkpoints.
    """

    start: float
    end: float
    true_positive: bool

    def contains(self, t: float) -> bool:
        return self.start <= t <= self.end


class WindowPredictor:
    """Seeded failure predictor with recall/precision/window knobs.

    Follows the prediction-window model of Aupy, Robert & Vivien: a
    predictor of *recall* ``r`` (fraction of failures predicted),
    *precision* ``p`` (fraction of raised windows that contain a
    failure) and window *width* ``w``. Each predicted failure raises a
    window opening ``lead`` seconds before the failure (uniform in
    ``[0, width]`` when ``lead`` is ``None``, i.e. the failure lands
    uniformly inside its window); false alarms arrive as an independent
    Poisson stream of rate :meth:`false_alarm_rate` so that the
    realized precision matches ``p``.

    The predictor owns its seed: window generation never consumes the
    caller's RNG stream, so a zero-recall predictor is sample-path
    identical to running with no predictor at all (the degeneracy the
    tests pin).
    """

    def __init__(
        self,
        recall: float,
        precision: float,
        width: float,
        *,
        lead: Optional[float] = None,
        seed: int = 0,
    ) -> None:
        self.recall = check_probability(recall, "recall")
        self.precision = check_probability(precision, "precision")
        if self.precision == 0.0:
            raise ValueError("precision must be > 0 (an all-noise predictor has no rate)")
        self.width = check_positive(width, "width")
        self.lead = None if lead is None else check_in_range(lead, "lead", 0.0, self.width)
        self.seed = check_integer(seed, "seed", minimum=0)

    def stream(self) -> np.random.Generator:
        """A fresh, dedicated RNG stream for window generation."""
        return np.random.default_rng(self.seed)

    def false_alarm_rate(self, failure_rate: float) -> float:
        """Poisson rate of false windows: ``r lam (1 - p) / p``."""
        lam = check_nonnegative(failure_rate, "failure_rate")
        return self.recall * lam * (1.0 - self.precision) / self.precision

    def window_fraction(self, failure_rate: float) -> float:
        """Expected fraction of time covered by windows (first order):
        ``r lam w / p``. Must stay below 1 for the out-of-window rate to
        be well defined."""
        lam = check_nonnegative(failure_rate, "failure_rate")
        return self.recall * lam * self.width / self.precision

    def windows(
        self,
        failure_times: ArrayLike,
        horizon: float,
        failure_rate: float,
        rng: RngLike = None,
    ) -> list[PredictionWindow]:
        """Generate the window stream for one reservation.

        ``failure_times`` are the true strike times in ``[0, horizon]``;
        each is predicted with probability ``recall``. False alarms are
        a Poisson(:meth:`false_alarm_rate`) stream over the horizon.
        Windows are returned sorted by start time.
        """
        horizon = check_positive(horizon, "horizon")
        gen = as_generator(rng if rng is not None else self.stream())
        fails = np.sort(np.asarray(failure_times, dtype=float))
        out: list[PredictionWindow] = []
        if fails.size:
            hit = gen.random(fails.size) < self.recall
            leads = (
                np.full(fails.size, self.lead)
                if self.lead is not None
                else gen.uniform(0.0, self.width, fails.size)
            )
            for f, h, ld in zip(fails, hit, leads):
                if h:
                    start = float(f - ld)
                    out.append(PredictionWindow(start, start + self.width, True))
        phi = self.false_alarm_rate(failure_rate)
        if phi > 0.0:
            n_false = int(gen.poisson(phi * horizon))
            for s in gen.uniform(0.0, horizon, n_false):
                out.append(PredictionWindow(float(s), float(s) + self.width, False))
        out.sort(key=lambda win: win.start)
        return out


def effective_rates(
    failure_rate: float, predictor: Optional[WindowPredictor]
) -> tuple[float, float]:
    """``(rate_in, rate_out)``: effective strike hazards inside and
    outside prediction windows.

    A window contains a failure with probability ``p`` and the failure
    lands uniformly inside it, so the in-window hazard is ``p / width``.
    Out of windows only the unpredicted failures remain, concentrated
    on the uncovered fraction of time:
    ``(1 - r) lam / (1 - r lam width / p)``. With no predictor both
    rates are the raw ``lam``.
    """
    lam = check_nonnegative(failure_rate, "failure_rate")
    if predictor is None:
        return lam, lam
    coverage = predictor.window_fraction(lam)
    if coverage >= 1.0:
        raise ValueError(
            f"prediction windows would cover the whole timeline "
            f"(r*lam*width/p = {coverage:.3g} >= 1); shrink the width or "
            f"raise the precision"
        )
    rate_in = predictor.precision / predictor.width
    rate_out = (1.0 - predictor.recall) * lam / (1.0 - coverage)
    return rate_in, rate_out


# ---------------------------------------------------------------------------
# Exact expected work: restart-without-checkpoint and periodic
# ---------------------------------------------------------------------------


def _checkpoint_nodes(
    checkpoint_law: Distribution, nodes: int
) -> tuple[NDArray[np.float64], NDArray[np.float64]]:
    """Discretize the checkpoint law into ``(values, weights)``.

    Discrete laws use their exact atoms; continuous laws use
    quantile-midpoint nodes with uniform weights.
    """
    if checkpoint_law.is_discrete:
        hi = float(checkpoint_law.ppf(1.0 - 1e-12))
        ks = np.arange(0.0, math.floor(hi) + 1.0)
        wts = np.asarray(checkpoint_law.pmf(ks), dtype=float)
        keep = wts > 0.0
        ks, wts = ks[keep], wts[keep]
        total = wts.sum()
        if total <= 0.0:
            raise ValueError("checkpoint law has no probability mass")
        return ks, wts / total
    q = (np.arange(nodes) + 0.5) / nodes
    vals = np.asarray(checkpoint_law.ppf(q), dtype=float)
    return vals, np.full(nodes, 1.0 / nodes)


def restart_expected_work(
    R: float,
    checkpoint_law: Distribution,
    margin: float,
    failure_rate: float,
    *,
    recovery: float = 0.0,
    grid: int = 1024,
    checkpoint_nodes: int = 128,
    strike_nodes: int = 129,
) -> float:
    """Expected saved work of *restart-without-checkpoint* (Sodre-style).

    The strategy keeps no intermediate checkpoints: it runs a full
    attempt of ``b - margin`` work plus one final checkpoint; a strike
    anywhere in the attempt voids everything done since the reservation
    start (or the last strike) and the application restarts from
    scratch with the remaining budget. With exponential strikes of rate
    ``lam`` the expected banked work ``E(b)`` satisfies the renewal
    (Volterra) equation::

        E(b) = E_C[ 1{C <= margin} e^{-lam (b - margin + C)} (b - margin)
                    + \\int_0^{min(b - margin + C, b)}
                        lam e^{-lam t} E(b - t - recovery) dt ]

    solved on a dense budget grid (trapezoid inner integral, implicit
    correction at ``recovery = 0``). ``failure_rate = 0`` reduces to
    the paper's final-only strategy with the given margin. This is the
    analytic anchor for
    :func:`repro.simulation.failures.simulate_restart_with_failures`.
    """
    R = check_positive(R, "R")
    margin = check_nonnegative(margin, "margin")
    if margin > R:
        raise ValueError(f"margin {margin} exceeds reservation {R}")
    lam = check_nonnegative(failure_rate, "failure_rate")
    rec = check_nonnegative(recovery, "recovery")
    if lam == 0.0:
        return final_only_expected_work(R, checkpoint_law, margin, 0.0)
    grid = check_integer(grid, "grid", minimum=8)
    c_vals, c_wts = _checkpoint_nodes(checkpoint_law, checkpoint_nodes)
    # Success term computed exactly: the sharp fit indicator 1{C <= margin}
    # resists node discretization, but E[1{C <= margin} e^{-lam C}] is just
    # the success curve at the margin.
    fit_factor = float(_SuccessCurve(checkpoint_law, lam, margin)(margin))
    b_grid = np.linspace(0.0, R, grid)
    E = np.zeros(grid)
    tau = np.linspace(0.0, 1.0, strike_nodes)
    d_tau = tau[1] - tau[0]
    for i in range(1, grid):
        b = b_grid[i]
        work = b - margin
        if work <= 0.0:
            continue
        span = work + c_vals
        span_cut = np.minimum(span, b)
        success = work * math.exp(-lam * work) * fit_factor
        # Strike integral per checkpoint node, trapezoid on a normalized
        # grid; E beyond b interpolates the still-zero E[i] (implicit).
        t_mat = span_cut[:, None] * tau[None, :]
        cont = np.interp(b - t_mat - rec, b_grid, E, left=0.0)
        kern = lam * np.exp(-lam * t_mat) * cont
        inner = span_cut * d_tau * (kern.sum(axis=1) - 0.5 * (kern[:, 0] + kern[:, -1]))
        total = success + float(np.sum(inner * c_wts))
        if rec == 0.0:
            # The t=0 endpoint of the strike integral references E(b)
            # itself; solve the linear fixed point explicitly.
            implicit = float(np.sum(c_wts * span_cut)) * d_tau * 0.5 * lam
            E[i] = total / max(1.0 - implicit, 1e-12)
        else:
            E[i] = total
    return float(E[-1])


def periodic_expected_work(
    R: float,
    checkpoint_law: Distribution,
    period: float,
    failure_rate: float,
    *,
    recovery: float = 0.0,
    grid: int = 1024,
    checkpoint_nodes: int = 64,
    strike_nodes: int = 65,
) -> float:
    """Exact expected saved work of period-``T`` checkpointing.

    Matches the semantics of
    :func:`repro.simulation.failures.simulate_periodic_with_failures`
    exactly: each attempt draws ``C``, works
    ``min(T, budget - C)`` and checkpoints; a strike inside the segment
    pays time-to-strike plus ``recovery`` and retries; banked work
    accumulates across segments. The renewal equation::

        G(b) = E_C[ 1{work > 0} ( e^{-lam seg} (work + G(b - seg))
                    + \\int_0^{seg} lam e^{-lam t} G(b - t - recovery) dt ) ]

    with ``work = min(T, b - C)`` and ``seg = work + C``, solved on a
    dense budget grid. This gives the failure modules a *sharp* analytic
    anchor (the first-order :func:`periodic_waste_rate` is only an
    asymptotic guide), enabling 5-sigma CLT cross-checks of
    ``young_period`` / ``daly_period`` tuning.
    """
    R = check_positive(R, "R")
    T = check_positive(period, "period")
    lam = check_nonnegative(failure_rate, "failure_rate")
    rec = check_nonnegative(recovery, "recovery")
    grid = check_integer(grid, "grid", minimum=8)
    c_vals, c_wts = _checkpoint_nodes(checkpoint_law, checkpoint_nodes)
    b_grid = np.linspace(0.0, R, grid)
    G = np.zeros(grid)
    tau = np.linspace(0.0, 1.0, strike_nodes)
    d_tau = tau[1] - tau[0]
    for i in range(1, grid):
        b = b_grid[i]
        work = np.minimum(T, b - c_vals)
        feasible = work > 0.0
        if not np.any(feasible):
            continue
        work = np.where(feasible, work, 0.0)
        seg = np.where(feasible, work + c_vals, 0.0)
        after = np.interp(b - seg, b_grid, G, left=0.0)
        success = np.where(feasible, np.exp(-lam * seg) * (work + after), 0.0)
        if lam > 0.0:
            t_mat = seg[:, None] * tau[None, :]
            cont = np.interp(b - t_mat - rec, b_grid, G, left=0.0)
            kern = lam * np.exp(-lam * t_mat) * cont
            inner = seg * d_tau * (kern.sum(axis=1) - 0.5 * (kern[:, 0] + kern[:, -1]))
            inner = np.where(feasible, inner, 0.0)
        else:
            inner = np.zeros_like(seg)
        total = float(np.sum((success + inner) * c_wts))
        if lam > 0.0 and rec == 0.0:
            implicit = float(np.sum(c_wts * seg)) * d_tau * 0.5 * lam
            G[i] = total / max(1.0 - implicit, 1e-12)
        else:
            G[i] = total
    return float(G[-1])
