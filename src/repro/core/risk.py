"""Risk-sensitive checkpoint objectives (library extension).

The paper maximizes the *expectation* of the saved work. A risk-averse
user may instead care about guarantees: "with probability at least q, I
save w seconds of work". For the preemptible scenario both views have
closed forms, because ``W(X)`` is a two-point random variable
(``R - X`` with probability ``F_C(X)``, else 0):

* :func:`success_probability` — ``P(W(X) >= target)``;
* :func:`margin_for_target` — the margin maximizing that probability
  for a given target (work beyond the target is sacrificed for safety);
* :func:`quantile_optimal_margin` — the margin maximizing the work
  level that is saved *with probability at least q*: ``X = F_C^{-1}(q)``
  (equivalently, maximizing the lower ``(1-q)``-quantile of ``W``), so
  "how sure do you want to be" maps directly onto a checkpoint-duration
  quantile. ``q -> 1`` recovers the paper's pessimistic margin
  (``X = b``), making the pessimistic strategy the extreme point of a
  continuum.

For the workflow scenario, :class:`TargetProbabilitySolver` maximizes
``P(saved work >= target)`` over all task-boundary stopping rules by
the same backward induction as :mod:`repro.core.optimal_stopping`, with
the stop reward ``F_C(R - w) * 1[w >= target]``.

``benchmarks/bench_risk.py`` traces the induced expectation-vs-
guarantee trade-off frontier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray

from .._validation import check_in_range, check_integer, check_positive
from ..distributions import Distribution

__all__ = [
    "success_probability",
    "margin_for_target",
    "quantile_optimal_margin",
    "TargetProbabilitySolution",
    "TargetProbabilitySolver",
]


def success_probability(R: float, law: Distribution, X: float, target: float) -> float:
    """``P(W(X) >= target)`` for the preemptible scenario.

    The saved work is ``R - X`` when the checkpoint fits; the event
    ``W >= target`` therefore requires ``R - X >= target`` *and*
    ``C <= X``.
    """
    R = check_positive(R, "R")
    X = check_in_range(X, "X", 0.0, R)
    target = check_positive(target, "target")
    if R - X < target:
        return 0.0
    return float(law.cdf(X))


def margin_for_target(R: float, law: Distribution, target: float) -> tuple[float, float]:
    """Margin maximizing ``P(W >= target)``; returns ``(X*, P*)``.

    The probability ``F_C(X)`` increases in ``X`` while feasibility
    requires ``X <= R - target``, so the optimum saturates the
    feasibility bound (capped at ``b``, beyond which more margin buys
    nothing).
    """
    R = check_positive(R, "R")
    target = check_positive(target, "target")
    if target > R - law.lower:
        return (law.lower, 0.0)  # cannot both work >= target and fit any checkpoint
    x_star = min(R - target, law.upper)
    return (x_star, float(law.cdf(x_star)))


def quantile_optimal_margin(R: float, law: Distribution, q: float) -> tuple[float, float]:
    """Margin maximizing the work saved *with probability >= q*.

    Returns ``(X*, guaranteed_value)`` with the guarantee
    ``P(W(X*) >= guaranteed_value) = q``. For the two-point ``W(X)``
    (``R - X`` w.p. ``F_C(X)``, else 0) the largest value saved with
    probability at least ``q`` under margin ``X`` is ``R - X`` iff
    ``F_C(X) >= q``; maximizing it gives ``X* = F_C^{-1}(q)`` and value
    ``R - X*`` (equivalently: the lower ``(1-q)``-quantile of ``W``).

    ``q -> 1`` demands near-certainty and recovers the paper's
    pessimistic margin ``X = b``; small ``q`` tolerates risk and allows
    margins below the mean checkpoint duration.
    """
    R = check_positive(R, "R")
    q = check_in_range(q, "q", 0.0, 1.0, lo_open=True, hi_open=True)
    x_star = float(law.ppf(q))
    x_star = min(max(x_star, law.lower), R)
    return (x_star, R - x_star)


@dataclass(frozen=True)
class TargetProbabilitySolution:
    """Solved guarantee-maximization for the workflow scenario.

    Attributes
    ----------
    target:
        Required saved work.
    probability:
        ``max P(saved >= target)`` over all stopping rules, from work 0.
    w_grid, value:
        The probability-to-go on the work grid.
    stop_region_start:
        Smallest work level at which stopping is optimal (>= target by
        construction; ``inf`` when the target is unreachable).
    """

    target: float
    probability: float
    w_grid: NDArray[np.float64]
    value: NDArray[np.float64]
    stop_region_start: float


class TargetProbabilitySolver:
    """Maximize ``P(saved work >= target)`` for IID task chains.

    Same backward sweep as the expected-value Bellman solver, but the
    stop reward is the *probability* ``F_C(R - w)`` gated on having
    reached the target::

        V(w) = max( F_C(R - w) * 1[w >= target],  E_X[ V(w + X) ] )

    Parameters mirror :class:`repro.core.optimal_stopping.OptimalStoppingSolver`.
    """

    def __init__(
        self,
        R: float,
        task_law: Distribution,
        checkpoint_law: Distribution,
        *,
        grid_points: int = 1601,
    ) -> None:
        self.R = check_positive(R, "R")
        if task_law.lower < 0.0 or checkpoint_law.lower < 0.0:
            raise ValueError("task and checkpoint laws must be supported on [0, inf)")
        self.task_law = task_law
        self.checkpoint_law = checkpoint_law
        self.grid_points = check_integer(grid_points, "grid_points", minimum=8)

    def solve(self, target: float) -> TargetProbabilitySolution:
        """Backward induction for a given work target."""
        target = check_positive(target, "target")
        if self.task_law.is_discrete:
            return self._solve_discrete(target)
        return self._solve_continuous(target)

    def _stop_values(self, w: NDArray[np.float64], target: float) -> NDArray[np.float64]:
        slack = self.R - w
        prob = np.where(slack > 0.0, self.checkpoint_law.cdf(np.maximum(slack, 0.0)), 0.0)
        return np.where(w >= target, prob, 0.0)

    def _solve_continuous(self, target: float) -> TargetProbabilitySolution:
        n = self.grid_points
        w = np.linspace(0.0, self.R, n)
        h = w[1] - w[0]
        stop = self._stop_values(w, target)
        offsets = (np.arange(n - 1) + 0.5) * h
        weights = np.asarray(self.task_law.pdf(offsets), dtype=float) * h
        value = np.zeros(n)
        value[n - 1] = stop[n - 1]
        for i in range(n - 2, -1, -1):
            m = n - 1 - i
            mid_vals = 0.5 * (value[i : i + m] + value[i + 1 : i + m + 1])
            cont = float(np.dot(mid_vals, weights[:m]))
            alpha = 0.5 * weights[0]
            cont = (cont - alpha * value[i]) / (1.0 - alpha) if alpha < 1.0 else 0.0
            value[i] = max(stop[i], cont)
        return self._package(target, w, stop, value)

    def _solve_discrete(self, target: float) -> TargetProbabilitySolution:
        R_int = math.floor(self.R)
        w = np.arange(0.0, R_int + 1.0)
        stop = self._stop_values(w, target)
        j = np.arange(0.0, R_int + 1.0)
        pj = np.asarray(self.task_law.pmf(j), dtype=float)
        p0 = pj[0]
        value = np.zeros_like(w)
        n = w.size
        value[n - 1] = stop[n - 1]
        for i in range(n - 2, -1, -1):
            max_j = n - 1 - i
            rest = float(np.dot(value[i + 1 : i + max_j + 1], pj[1 : max_j + 1]))
            cont = rest / (1.0 - p0) if p0 < 1.0 else 0.0
            value[i] = max(stop[i], cont)
        return self._package(target, w, stop, value)

    def _package(
        self,
        target: float,
        w: NDArray[np.float64],
        stop: NDArray[np.float64],
        value: NDArray[np.float64],
    ) -> TargetProbabilitySolution:
        optimal_stop = (stop >= value * (1.0 - 1e-12)) & (stop > 0.0)
        idx = np.nonzero(optimal_stop)[0]
        start = float(w[idx[0]]) if idx.size else math.inf
        return TargetProbabilitySolution(
            target=target,
            probability=float(value[0]),
            w_grid=w,
            value=value,
            stop_region_start=start,
        )
