"""Section 4.4: what to do after a successful checkpoint.

When a checkpoint completes with time still left in the reservation,
the user may either *continue* (run more tasks and checkpoint again)
or *drop* the reservation. The paper frames the trade-off qualitatively
— "some HPC or cloud systems charge by time actually spent rather than
by time reserved ... the decision involves many parameters, including
the urgency of getting application results and the budget of the user".

This module makes that trade-off executable:

* :class:`BillingModel` captures the two charging schemes;
* :class:`ContinuationAdvisor` computes the expected *additional* work
  obtainable from the remaining budget (via the optimal-stopping value
  function) and the expected additional charge, and recommends
  continue/drop under a user-supplied exchange rate between work value
  and money.

The multi-reservation campaign *runner* (a full application executed
across a series of reservations with recovery cost ``r``, as sketched in
Section 2) lives in :mod:`repro.simulation.campaign`.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from .._validation import check_nonnegative, check_positive
from ..distributions import Distribution
from .optimal_stopping import OptimalStoppingSolver

__all__ = ["BillingModel", "ContinuationDecision", "ContinuationAdvisor"]


class BillingModel(enum.Enum):
    """How the platform charges for a reservation."""

    #: The full reservation is charged regardless of use (classic HPC).
    BY_RESERVATION = "by_reservation"
    #: Only the time actually spent is charged (cloud-style).
    BY_USAGE = "by_usage"


@dataclass(frozen=True)
class ContinuationDecision:
    """Outcome of a continue-or-drop evaluation.

    Attributes
    ----------
    continue_execution:
        The recommendation.
    expected_additional_work:
        Expected extra work saved by continuing optimally in the
        remaining budget.
    expected_additional_cost:
        Expected extra monetary charge caused by continuing (0 under
        :attr:`BillingModel.BY_RESERVATION`, since the time is already
        paid for).
    remaining_budget:
        Time left in the reservation at the decision instant.
    """

    continue_execution: bool
    expected_additional_work: float
    expected_additional_cost: float
    remaining_budget: float

    def summary(self) -> str:
        """One-line human-readable description."""
        verdict = "CONTINUE" if self.continue_execution else "DROP"
        return (
            f"{verdict}: E[extra work]={self.expected_additional_work:.4g}, "
            f"E[extra cost]={self.expected_additional_cost:.4g} "
            f"(budget left {self.remaining_budget:.4g})"
        )


class ContinuationAdvisor:
    """Continue-or-drop advisor for the end of a successful checkpoint.

    Parameters
    ----------
    task_law, checkpoint_law:
        The workflow's laws (both supported on ``[0, inf)``).
    billing:
        The platform's charging scheme.
    price_per_second:
        Charge rate under :attr:`BillingModel.BY_USAGE` (ignored for
        by-reservation billing, where continuing is free).
    value_per_work_unit:
        The user's valuation of one unit of saved work, in the same
        currency as ``price_per_second`` — the paper's "urgency"
        parameter made explicit.

    Notes
    -----
    The advisor is conservative about feasibility: with less budget
    than ``C_min`` (the minimum checkpoint duration) remaining, no new
    checkpoint can ever complete and the recommendation is always to
    drop, matching the paper's observation.
    """

    def __init__(
        self,
        task_law: Distribution,
        checkpoint_law: Distribution,
        *,
        billing: BillingModel = BillingModel.BY_RESERVATION,
        price_per_second: float = 0.0,
        value_per_work_unit: float = 1.0,
        min_expected_work: float | None = None,
    ) -> None:
        self.task_law = task_law
        self.checkpoint_law = checkpoint_law
        self.billing = billing
        self.price_per_second = check_nonnegative(price_per_second, "price_per_second")
        self.value_per_work_unit = check_positive(value_per_work_unit, "value_per_work_unit")
        # Materiality floor: continuing for an astronomically unlikely
        # sliver of work (e.g. 1e-40 expected seconds) is noise, not a
        # plan. Default: 1% of one task's mean duration.
        if min_expected_work is None:
            min_expected_work = 0.01 * task_law.mean()
        self.min_expected_work = check_nonnegative(min_expected_work, "min_expected_work")

    def expected_additional_work(self, remaining_budget: float) -> float:
        """Expected extra saved work from continuing optimally.

        This is ``V(0)`` of the optimal-stopping problem restricted to
        the remaining budget: the best any strategy (static or dynamic)
        can achieve, so the advisor never under-sells continuing.
        """
        remaining_budget = check_nonnegative(remaining_budget, "remaining_budget")
        if remaining_budget <= self.checkpoint_law.lower:
            return 0.0
        solver = OptimalStoppingSolver(
            remaining_budget, self.task_law, self.checkpoint_law, grid_points=801
        )
        return solver.solve().value_at_start

    def expected_usage(self, remaining_budget: float) -> float:
        """Crude expected extra machine time if we continue.

        Modeled as work attempted up to the stopping threshold plus one
        checkpoint; capped by the remaining budget. Used only for the
        by-usage cost estimate (an upper bound keeps the advisor
        conservative about spending money).
        """
        remaining_budget = check_nonnegative(remaining_budget, "remaining_budget")
        if remaining_budget <= 0.0:
            return 0.0
        solver = OptimalStoppingSolver(
            remaining_budget, self.task_law, self.checkpoint_law, grid_points=801
        )
        threshold = solver.solve().threshold
        if math.isinf(threshold):
            return remaining_budget
        usage = threshold + self.task_law.mean() + self.checkpoint_law.mean()
        return min(usage, remaining_budget)

    def decide(self, remaining_budget: float) -> ContinuationDecision:
        """Recommend continue vs drop for the remaining budget."""
        extra_work = self.expected_additional_work(remaining_budget)
        if self.billing is BillingModel.BY_RESERVATION:
            extra_cost = 0.0
        else:
            extra_cost = self.price_per_second * self.expected_usage(remaining_budget)
        worth_it = (
            extra_work * self.value_per_work_unit > extra_cost
            and extra_work > self.min_expected_work
        )
        return ContinuationDecision(
            continue_execution=worth_it,
            expected_additional_work=extra_work,
            expected_additional_cost=extra_cost,
            remaining_budget=float(remaining_budget),
        )
