"""Scenario 1 (paper Section 3): checkpointing at any instant.

A preemptible application runs in a reservation of length ``R`` and
starts its single checkpoint ``X`` seconds before the end (at time
``R - X``). Checkpoint duration ``C`` follows a law with bounded support
``[a, b]`` (``0 < a < b <= R``). The saved work is::

    W(X) = (R - X) * 1[C <= X]        for X <= b
    W(X) = (R - X)                    for X >  b

so the expectation is ``E(W(X)) = (R - X) * F_C(X)`` — Equation (1) of
the paper (``F_C(X) = 1`` for ``X >= b`` makes the two branches one
formula).

This module provides:

* :func:`expected_work` — Equation (1) for any law, vectorized in ``X``;
* closed-form optimal margins for the Uniform law
  (:func:`uniform_optimal_margin`, Section 3.2.1) and the truncated
  Exponential law via Lambert ``W``
  (:func:`exponential_optimal_margin`, Section 3.2.2);
* a numeric optimizer for arbitrary laws (Normal Section 3.2.3,
  LogNormal Section 3.2.4, Weibull, Empirical, ...);
* :func:`solve` — dispatching front end returning a
  :class:`MarginSolution` with the optimum, the pessimistic baseline
  ``X = b`` and the gain over it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike, NDArray
from scipy import optimize, special

from .._validation import check_positive
from ..distributions import (
    Distribution,
    Exponential,
    TruncatedContinuous,
    Uniform,
)

__all__ = [
    "MarginSolution",
    "expected_work",
    "uniform_optimal_margin",
    "exponential_optimal_margin",
    "numeric_optimal_margin",
    "pessimistic_expected_work",
    "solve",
]


def _check_problem(R: float, law: Distribution) -> tuple[float, float, float]:
    """Validate the Section 3 framework and return ``(R, a, b)``.

    Requires a bounded-support law with ``0 < a < b <= R`` (the paper's
    standing assumptions: below ``a`` there is never enough time to
    checkpoint, and a support reaching past ``R`` would make even an
    immediate checkpoint fallible).
    """
    R = check_positive(R, "R")
    a, b = law.support
    if not (math.isfinite(a) and math.isfinite(b)):
        raise ValueError(
            "checkpoint law must have bounded support [a, b]; truncate it first "
            "(repro.distributions.truncate)"
        )
    if not 0.0 < a < b:
        raise ValueError(f"support must satisfy 0 < a < b, got [{a}, {b}]")
    if b > R:
        raise ValueError(
            f"support upper end b={b} exceeds the reservation R={R}; "
            "no margin can guarantee the checkpoint fits"
        )
    return R, a, b


def expected_work(R: float, law: Distribution, X: ArrayLike) -> NDArray[np.float64]:
    """Expected saved work ``E(W(X))`` — Equation (1).

    Parameters
    ----------
    R:
        Reservation length.
    law:
        Checkpoint-duration law with bounded support ``[a, b]``,
        ``0 < a < b <= R``.
    X:
        Margin(s), each in ``[0, R]``. Values below ``a`` yield 0 (the
        checkpoint cannot finish); values above ``b`` yield ``R - X``
        (the checkpoint always finishes).

    Returns
    -------
    numpy.ndarray
        ``(R - X) * P(C <= X)``, same shape as ``X``.
    """
    R, _, _ = _check_problem(R, law)
    X_arr = np.asarray(X, dtype=float)
    if np.any((X_arr < 0.0) | (X_arr > R)):
        raise ValueError(f"margins must lie in [0, R] = [0, {R}]")
    return (R - X_arr) * np.asarray(law.cdf(X_arr), dtype=float)


def pessimistic_expected_work(R: float, law: Distribution) -> float:
    """Saved work of the risk-free strategy ``X = b`` (always ``R - b``)."""
    R, _, b = _check_problem(R, law)
    return R - b


def uniform_optimal_margin(a: float, b: float, R: float) -> float:
    """Closed-form optimum for ``C ~ Uniform([a, b])`` (Section 3.2.1).

    ``X_opt = min((R + a) / 2, b)``: the unconstrained maximizer of the
    trinomial ``(X - a)(R - X)`` capped at ``b``.
    """
    _check_problem(R, Uniform(a, b))
    return min(0.5 * (R + a), b)


def _lambertw_exp(z: float) -> float:
    """Principal-branch ``W(e^z)``, stable for large ``z``.

    For moderate ``z`` this is ``lambertw(exp(z))``; for large ``z``
    (where ``exp(z)`` overflows) it iterates the fixed point
    ``w = z - log(w)``, which converges quadratically from ``w0 = z``.
    """
    if z < 500.0:
        return float(special.lambertw(math.exp(z)).real)
    w = z - math.log(z)
    for _ in range(50):
        w_next = z - math.log(w)
        if abs(w_next - w) <= 1e-14 * abs(w_next):
            return w_next
        w = w_next
    return w


def exponential_optimal_margin(lam: float, a: float, b: float, R: float) -> float:
    """Closed-form optimum for a truncated Exponential law (Section 3.2.2).

    For ``C ~ Exp(lam)`` truncated to ``[a, b]``::

        X_opt = min( (lam R + 1 - W(e^{-lam a + lam R + 1})) / lam , b )

    with ``W`` the principal branch of the Lambert function. The paper
    obtained this zero of the derivative with Wolfram Alpha; here it is
    :func:`scipy.special.lambertw` (with an asymptotic continuation for
    arguments whose exponential would overflow).
    """
    lam = check_positive(lam, "lam")
    _check_problem(R, TruncatedContinuous(Exponential(lam), a, b))
    z = -lam * a + lam * R + 1.0
    x_star = (lam * R + 1.0 - _lambertw_exp(z)) / lam
    return min(x_star, b)


def numeric_optimal_margin(
    R: float,
    law: Distribution,
    *,
    grid_points: int = 2001,
    xatol: float = 1e-10,
) -> float:
    """Numeric maximizer of ``E(W(X))`` over ``[a, b]`` for any law.

    Since ``E(W(X)) = R - X`` is strictly decreasing on ``[b, R]``, the
    optimum always lies in ``[a, b]``. A dense vectorized grid scan
    locates the global maximum basin (robust to non-concave laws, e.g.
    multi-modal empirical fits), then Brent refinement polishes it.

    Parameters
    ----------
    R, law:
        Problem data (same contract as :func:`expected_work`).
    grid_points:
        Size of the bracketing scan.
    xatol:
        Absolute tolerance of the Brent polish.
    """
    R, a, b = _check_problem(R, law)
    xs = np.linspace(a, b, grid_points)
    vals = (R - xs) * np.asarray(law.cdf(xs), dtype=float)
    i = int(np.argmax(vals))
    lo = xs[max(i - 1, 0)]
    hi = xs[min(i + 1, grid_points - 1)]
    if hi <= lo:
        return float(xs[i])
    res = optimize.minimize_scalar(
        lambda x: -(R - x) * float(law.cdf(x)),
        bounds=(lo, hi),
        method="bounded",
        options={"xatol": xatol},
    )
    x_best = float(res.x)
    if -res.fun >= vals[i]:
        return x_best
    return float(xs[i])


@dataclass(frozen=True)
class MarginSolution:
    """Solution of the preemptible problem.

    Attributes
    ----------
    R:
        Reservation length.
    x_opt:
        Optimal margin (checkpoint starts at ``R - x_opt``).
    expected_work_opt:
        ``E(W(x_opt))``.
    pessimistic_work:
        ``E(W(b)) = R - b``, the risk-free baseline of the paper.
    gain:
        ``expected_work_opt / pessimistic_work`` (``inf`` if the
        baseline saves nothing, i.e. ``b = R``).
    method:
        ``"closed-form"`` or ``"numeric"``.
    """

    R: float
    x_opt: float
    expected_work_opt: float
    pessimistic_work: float
    gain: float
    method: str

    @property
    def at_worst_case(self) -> bool:
        """True when the optimum is the pessimistic margin ``X = b``."""
        return math.isclose(self.x_opt, self.pessimistic_margin, rel_tol=1e-9, abs_tol=1e-9)

    @property
    def pessimistic_margin(self) -> float:
        """The worst-case margin ``b = R - pessimistic_work``."""
        return self.R - self.pessimistic_work

    def summary(self) -> str:
        """One-line human-readable description."""
        return (
            f"X_opt={self.x_opt:.4g} ({self.method}), "
            f"E(W)={self.expected_work_opt:.4g} vs pessimistic {self.pessimistic_work:.4g} "
            f"(gain {self.gain:.3f}x)"
        )


def solve(R: float, law: Distribution) -> MarginSolution:
    """Solve the preemptible problem for any checkpoint law.

    Dispatches to the closed form when one exists (Uniform, truncated
    Exponential) and to :func:`numeric_optimal_margin` otherwise.

    Examples
    --------
    Figure 1(a) of the paper (Uniform, ``a=1, b=7.5, R=10``):

    >>> from repro.distributions import Uniform
    >>> sol = solve(10.0, Uniform(1.0, 7.5))
    >>> sol.x_opt
    5.5
    """
    R, a, b = _check_problem(R, law)
    if isinstance(law, Uniform):
        x_opt = uniform_optimal_margin(law.a, law.b, R)
        method = "closed-form"
    elif isinstance(law, TruncatedContinuous) and isinstance(law.base, Exponential):
        x_opt = exponential_optimal_margin(law.base.lam, law.lo, law.hi, R)
        method = "closed-form"
    else:
        x_opt = numeric_optimal_margin(R, law)
        method = "numeric"
    ew = float(expected_work(R, law, x_opt))
    pess = R - b
    gain = math.inf if pess == 0.0 else ew / pess
    return MarginSolution(
        R=R,
        x_opt=float(x_opt),
        expected_work_opt=ew,
        pessimistic_work=pess,
        gain=gain,
        method=method,
    )
