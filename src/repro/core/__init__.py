"""The paper's contribution: optimal end-of-reservation checkpointing.

* :mod:`repro.core.preemptible` — Section 3 (checkpoint at any instant);
* :mod:`repro.core.static` — Section 4.2 (static task-count strategy);
* :mod:`repro.core.dynamic` — Section 4.3 (per-task-boundary rule);
* :mod:`repro.core.optimal_stopping` — exact Bellman extension;
* :mod:`repro.core.policies` — uniform policy interfaces;
* :mod:`repro.core.campaign` — Section 4.4 continue-or-drop advisor.
"""

from . import preemptible
from .campaign import BillingModel, ContinuationAdvisor, ContinuationDecision
from .dynamic import DecisionCurve, DynamicStrategy, expected_if_checkpoint, expected_if_continue
from .failures import (
    FailureAwareDynamicStrategy,
    PredictionWindow,
    WindowPredictor,
    daly_period,
    effective_rates,
    expected_if_checkpoint_failures,
    expected_if_continue_failures,
    final_only_expected_work,
    periodic_expected_work,
    periodic_waste_rate,
    restart_expected_work,
    young_period,
)
from .general_static import GeneralStaticSolution, GeneralStaticSolver
from .lookahead import LookaheadStrategy
from .risk import (
    TargetProbabilitySolution,
    TargetProbabilitySolver,
    margin_for_target,
    quantile_optimal_margin,
    success_probability,
)
from .optimal_stopping import OptimalStoppingSolution, OptimalStoppingSolver
from .policies import (
    DynamicPolicy,
    FailureAwareDynamicPolicy,
    FixedMargin,
    MarginPolicy,
    OptimalMargin,
    OptimalStoppingPolicy,
    PessimisticMargin,
    RestartPolicy,
    StaticCountPolicy,
    StaticOptimalPolicy,
    WorkflowPolicy,
)
from .preemptible import (
    MarginSolution,
    expected_work,
    exponential_optimal_margin,
    numeric_optimal_margin,
    pessimistic_expected_work,
    solve,
    uniform_optimal_margin,
)
from .static import StaticSolution, StaticStrategy

__all__ = [
    "preemptible",
    "MarginSolution",
    "expected_work",
    "solve",
    "uniform_optimal_margin",
    "exponential_optimal_margin",
    "numeric_optimal_margin",
    "pessimistic_expected_work",
    "StaticStrategy",
    "StaticSolution",
    "DynamicStrategy",
    "DecisionCurve",
    "expected_if_checkpoint",
    "expected_if_continue",
    "OptimalStoppingSolver",
    "OptimalStoppingSolution",
    "MarginPolicy",
    "FixedMargin",
    "PessimisticMargin",
    "OptimalMargin",
    "WorkflowPolicy",
    "StaticCountPolicy",
    "StaticOptimalPolicy",
    "DynamicPolicy",
    "OptimalStoppingPolicy",
    "BillingModel",
    "ContinuationAdvisor",
    "ContinuationDecision",
    "GeneralStaticSolver",
    "GeneralStaticSolution",
    "LookaheadStrategy",
    "success_probability",
    "margin_for_target",
    "quantile_optimal_margin",
    "TargetProbabilitySolver",
    "TargetProbabilitySolution",
    "young_period",
    "daly_period",
    "final_only_expected_work",
    "periodic_waste_rate",
    "PredictionWindow",
    "WindowPredictor",
    "effective_rates",
    "expected_if_checkpoint_failures",
    "expected_if_continue_failures",
    "FailureAwareDynamicStrategy",
    "FailureAwareDynamicPolicy",
    "RestartPolicy",
    "restart_expected_work",
    "periodic_expected_work",
]
