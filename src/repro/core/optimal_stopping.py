"""Exact optimal stopping for the workflow scenario (library extension).

The paper's dynamic strategy (Section 4.3) is a *one-step lookahead*
rule: it compares checkpointing now against running exactly one more
task and then checkpointing. The truly optimal policy compares
checkpointing now against the value of *continuing optimally*::

    V(w) = max( w * F_C(R - w),  E_X[ V(w + X) ] )

with ``V(w) = 0`` for ``w >= R`` (no time remains for any checkpoint).
Because work only accumulates, the Bellman equation is solved in one
backward sweep over a work grid — no fixed-point iteration is needed.

``V(0)`` is the expected saved work of the optimal policy, an upper
bound on every implementable strategy; the gap to the one-step rule is
quantified in ``benchmarks/bench_optimal_stopping.py``. The same
backward sweep evaluates the expected saved work of *any* threshold
policy (:meth:`OptimalStoppingSolver.threshold_policy_value`), which is
how the static / dynamic / optimal strategies are compared analytically
rather than only by Monte Carlo.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray

from .._validation import check_integer, check_positive
from ..distributions import Distribution

__all__ = ["OptimalStoppingSolver", "OptimalStoppingSolution"]


@dataclass(frozen=True)
class OptimalStoppingSolution:
    """Solved Bellman recursion on the work grid.

    Attributes
    ----------
    w_grid:
        Grid of accumulated-work values (ascending, ``[0, R]``).
    value:
        ``V(w)`` on the grid.
    checkpoint_value:
        ``w * F_C(R - w)`` on the grid (value of stopping).
    threshold:
        Smallest grid ``w`` at which stopping is optimal; ``inf`` if
        continuing is always better (never happens for sane inputs).
    """

    w_grid: NDArray[np.float64]
    value: NDArray[np.float64]
    checkpoint_value: NDArray[np.float64]
    threshold: float

    @property
    def value_at_start(self) -> float:
        """``V(0)``: expected saved work of the optimal policy."""
        return float(self.value[0])


class OptimalStoppingSolver:
    """Backward-induction solver for the end-of-task stopping problem.

    Parameters
    ----------
    R:
        Reservation length.
    task_law:
        IID task-duration law, supported on ``[0, inf)``. Continuous
        laws are discretized on a midpoint lattice; discrete laws are
        solved exactly on the integers.
    checkpoint_law:
        Checkpoint-duration law, supported on ``[0, inf)``.
    grid_points:
        Lattice resolution for continuous task laws (ignored for
        discrete laws, which use the integer grid ``0..R``).
    """

    def __init__(
        self,
        R: float,
        task_law: Distribution,
        checkpoint_law: Distribution,
        *,
        grid_points: int = 1601,
    ) -> None:
        self.R = check_positive(R, "R")
        if task_law.lower < 0.0 or checkpoint_law.lower < 0.0:
            raise ValueError("task and checkpoint laws must be supported on [0, inf)")
        self.task_law = task_law
        self.checkpoint_law = checkpoint_law
        self.grid_points = check_integer(grid_points, "grid_points", minimum=8)

    # -- helpers ------------------------------------------------------------

    def _stop_values(self, w: NDArray[np.float64]) -> NDArray[np.float64]:
        slack = self.R - w
        success = np.where(
            slack > 0.0, self.checkpoint_law.cdf(np.maximum(slack, 0.0)), 0.0
        )
        return w * success

    # -- solvers ------------------------------------------------------------

    def solve(self) -> OptimalStoppingSolution:
        """Run the backward sweep appropriate for the task law."""
        if self.task_law.is_discrete:
            return self._solve_discrete()
        return self._solve_continuous()

    def _solve_discrete(self) -> OptimalStoppingSolution:
        R_int = math.floor(self.R)
        w = np.arange(0.0, R_int + 1.0)
        stop = self._stop_values(w)
        # pmf over all single-task durations that can matter (0..R).
        j = np.arange(0.0, R_int + 1.0)
        pj = np.asarray(self.task_law.pmf(j), dtype=float)
        p0 = pj[0]
        value = np.zeros_like(w)
        n = w.size
        value[n - 1] = stop[n - 1]  # at w = R: stop value (0) is all there is
        for i in range(n - 2, -1, -1):
            # continuation = sum_{j>=0, w+j<=R} V(w+j) p_j ; the j=0 term
            # references V(w) itself (zero-length task): if continuing is
            # optimal, V = p0*V + rest  =>  V = rest / (1 - p0).
            max_j = n - 1 - i
            rest = float(np.dot(value[i + 1 : i + max_j + 1], pj[1 : max_j + 1]))
            cont = rest / (1.0 - p0) if p0 < 1.0 else 0.0
            value[i] = max(stop[i], cont)
        threshold = self._extract_threshold(w, stop, value)
        return OptimalStoppingSolution(w, value, stop, threshold)

    def _solve_continuous(self) -> OptimalStoppingSolution:
        n = self.grid_points
        w = np.linspace(0.0, self.R, n)
        h = w[1] - w[0]
        stop = self._stop_values(w)
        # Midpoint lattice for the task-duration integral: offsets
        # x_k = (k + 1/2) h carry mass ~ pdf(x_k) * h; the tail beyond the
        # grid (task overshoots R) contributes 0 by construction.
        offsets = (np.arange(n - 1) + 0.5) * h
        weights = np.asarray(self.task_law.pdf(offsets), dtype=float) * h
        value = np.zeros(n)
        value[n - 1] = stop[n - 1]
        for i in range(n - 2, -1, -1):
            m = n - 1 - i  # number of midpoint cells between w_i and R
            # V at midpoints w_i + offsets[:m], linear interpolation.
            mid_vals = 0.5 * (value[i : i + m] + value[i + 1 : i + m + 1])
            cont = float(np.dot(mid_vals, weights[:m]))
            # mid_vals[0] involves value[i]: solve the linear self-reference.
            alpha = 0.5 * weights[0]
            cont_rest = cont - alpha * value[i]
            cont_solved = cont_rest / (1.0 - alpha) if alpha < 1.0 else 0.0
            value[i] = max(stop[i], cont_solved)
        threshold = self._extract_threshold(w, stop, value)
        return OptimalStoppingSolution(w, value, stop, threshold)

    @staticmethod
    def _extract_threshold(
        w: NDArray[np.float64],
        stop: NDArray[np.float64],
        value: NDArray[np.float64],
    ) -> float:
        # Stopping is optimal where the stop value attains the total value.
        # Ignore the trivial region near R where both are ~0.
        optimal_stop = stop >= value * (1.0 - 1e-12)
        meaningful = stop > 0.0
        idx = np.nonzero(optimal_stop & meaningful)[0]
        if idx.size == 0:
            return math.inf
        return float(w[idx[0]])

    # -- policy evaluation ----------------------------------------------------

    def threshold_policy_value(self, threshold: float) -> float:
        """Expected saved work of the policy "checkpoint once ``w >= t``".

        Evaluates the fixed (non-optimal) threshold policy by the same
        backward sweep with ``max`` replaced by the policy's action.
        Both the paper's dynamic rule (threshold ``W_int``) and the
        static rule do not reduce exactly to work thresholds, but the
        dynamic rule does whenever the advantage is single-crossing, so
        this gives its exact expected value without Monte Carlo noise.
        """
        threshold = float(threshold)
        if self.task_law.is_discrete:
            R_int = math.floor(self.R)
            w = np.arange(0.0, R_int + 1.0)
            stop = self._stop_values(w)
            j = np.arange(0.0, R_int + 1.0)
            pj = np.asarray(self.task_law.pmf(j), dtype=float)
            p0 = pj[0]
            value = np.zeros_like(w)
            n = w.size
            value[n - 1] = stop[n - 1]
            for i in range(n - 2, -1, -1):
                if w[i] >= threshold:
                    value[i] = stop[i]
                    continue
                max_j = n - 1 - i
                rest = float(np.dot(value[i + 1 : i + max_j + 1], pj[1 : max_j + 1]))
                value[i] = rest / (1.0 - p0) if p0 < 1.0 else 0.0
            return float(value[0])
        n = self.grid_points
        w = np.linspace(0.0, self.R, n)
        h = w[1] - w[0]
        stop = self._stop_values(w)
        offsets = (np.arange(n - 1) + 0.5) * h
        weights = np.asarray(self.task_law.pdf(offsets), dtype=float) * h
        value = np.zeros(n)
        value[n - 1] = stop[n - 1]
        for i in range(n - 2, -1, -1):
            if w[i] >= threshold:
                value[i] = stop[i]
                continue
            m = n - 1 - i
            mid_vals = 0.5 * (value[i : i + m] + value[i + 1 : i + m + 1])
            cont = float(np.dot(mid_vals, weights[:m]))
            alpha = 0.5 * weights[0]
            cont_rest = cont - alpha * value[i]
            value[i] = cont_rest / (1.0 - alpha) if alpha < 1.0 else 0.0
        return float(value[0])
