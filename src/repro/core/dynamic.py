"""Scenario 2, dynamic strategy (paper Section 4.3).

At the end of each task the scheduler knows the work ``W_n`` actually
done so far and compares two expectations:

* checkpoint now (Section 4.3)::

      E(W_C) = W_n * P(C <= R - W_n) = W_n * F_C(R - W_n)

* run one more task, then checkpoint::

      E(W_+1) = integral_0^{R - W_n} (x + W_n) * F_C(R - W_n - x) * f_X(x) dx

  (a sum over integer ``x`` for discrete task laws, Section 4.3.3).

The rule checkpoints as soon as ``E(W_C) >= E(W_+1)``. The paper
illustrates the two curves against ``W_n`` and reads off the crossing
abscissa ``W_int`` (Figures 8-10); :meth:`DynamicStrategy.crossing_point`
computes it by bracketed root-finding, and the rule itself is exposed
both as a direct comparison (:meth:`DynamicStrategy.should_checkpoint`)
and as the equivalent work threshold for the vectorized simulator.

The module-level functions take the task law explicitly so the
non-IID chain extension (:mod:`repro.workflows.chain`) can reuse them
with a different law per task, as the paper's conclusion suggests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike, NDArray
from scipy import integrate, optimize

from .._validation import check_in_range, check_positive
from ..distributions import Distribution

__all__ = [
    "expected_if_checkpoint",
    "expected_if_continue",
    "DynamicStrategy",
    "DecisionCurve",
]


def _check_laws(task_law: Distribution, checkpoint_law: Distribution) -> None:
    if task_law.lower < 0.0:
        raise ValueError(
            "task law must be supported on [0, inf) for the dynamic strategy "
            "(truncate Normal task laws to [0, inf) as in Section 4.3.1); got "
            f"support [{task_law.lower}, {task_law.upper}]"
        )
    if checkpoint_law.lower < 0.0:
        raise ValueError(
            "checkpoint law must be supported on [0, inf); got support "
            f"[{checkpoint_law.lower}, {checkpoint_law.upper}]"
        )


def expected_if_checkpoint(
    R: float, checkpoint_law: Distribution, w: ArrayLike
) -> NDArray[np.float64]:
    """``E(W_C) = w * F_C(R - w)``, vectorized over the work done ``w``."""
    R = check_positive(R, "R")
    w_arr = np.asarray(w, dtype=float)
    slack = R - w_arr
    success = np.where(slack > 0.0, checkpoint_law.cdf(np.maximum(slack, 0.0)), 0.0)
    return w_arr * success


def expected_if_continue(
    R: float,
    task_law: Distribution,
    checkpoint_law: Distribution,
    w: float,
) -> float:
    """``E(W_+1)``: expected saved work if exactly one more task runs.

    Parameters
    ----------
    R:
        Reservation length.
    task_law:
        Law of the *next* task's duration (supported on ``[0, inf)``).
    checkpoint_law:
        Checkpoint-duration law (supported on ``[0, inf)``).
    w:
        Work accumulated so far, ``0 <= w <= R``.
    """
    R = check_positive(R, "R")
    w = check_in_range(w, "w", 0.0, R)
    budget = R - w
    if budget <= 0.0:
        return 0.0
    if task_law.is_discrete:
        j = np.arange(0.0, math.floor(budget) + 1.0)
        slack = budget - j
        success = np.where(slack > 0.0, checkpoint_law.cdf(np.maximum(slack, 0.0)), 0.0)
        return float(np.sum((j + w) * success * task_law.pmf(j)))

    lo = max(task_law.lower, 0.0)
    hi = min(task_law.upper, budget)
    if hi <= lo:
        return 0.0

    def integrand(x: float) -> float:
        slack = budget - x
        success = float(checkpoint_law.cdf(slack)) if slack > 0.0 else 0.0
        return (x + w) * success * float(task_law.pdf(x))

    center = task_law.mean()
    points = [center] if lo < center < hi else None
    val, _ = integrate.quad(integrand, lo, hi, limit=400, points=points)
    return val


@dataclass(frozen=True)
class DecisionCurve:
    """Sampled decision curves for a Figure 8/9/10-style plot.

    Attributes
    ----------
    w:
        Grid of accumulated-work values.
    checkpoint_now:
        ``E(W_C)`` on the grid (the paper's red curve).
    one_more_task:
        ``E(W_+1)`` on the grid (the paper's green curve).
    """

    w: NDArray[np.float64]
    checkpoint_now: NDArray[np.float64]
    one_more_task: NDArray[np.float64]


class DynamicStrategy:
    """End-of-task checkpoint/continue decision rule.

    Parameters
    ----------
    R:
        Reservation length.
    task_law:
        IID task-duration law ``D_X``, supported on ``[0, inf)``.
    checkpoint_law:
        Checkpoint-duration law ``D_C``, supported on ``[0, inf)``.

    Examples
    --------
    The paper's Figure 9 instance (Gamma tasks, ``W_int ~= 6.4``):

    >>> from repro.distributions import Gamma, Normal, truncate
    >>> dyn = DynamicStrategy(
    ...     R=10.0,
    ...     task_law=Gamma(1.0, 0.5),
    ...     checkpoint_law=truncate(Normal(2.0, 0.4), 0.0),
    ... )
    >>> round(dyn.crossing_point(), 1)
    6.4
    """

    def __init__(self, R: float, task_law: Distribution, checkpoint_law: Distribution) -> None:
        self.R = check_positive(R, "R")
        _check_laws(task_law, checkpoint_law)
        self.task_law = task_law
        self.checkpoint_law = checkpoint_law
        self._crossing_cache: float | None = None

    # -- expectations ------------------------------------------------------

    def expected_if_checkpoint(self, w: ArrayLike) -> NDArray[np.float64]:
        """``E(W_C)`` at accumulated work ``w`` (vectorized)."""
        return expected_if_checkpoint(self.R, self.checkpoint_law, w)

    def expected_if_continue(self, w: float) -> float:
        """``E(W_+1)`` at accumulated work ``w``."""
        return expected_if_continue(self.R, self.task_law, self.checkpoint_law, w)

    def advantage(self, w: float) -> float:
        """``E(W_C) - E(W_+1)``: positive when checkpointing now wins."""
        return float(self.expected_if_checkpoint(w)) - self.expected_if_continue(w)

    def should_checkpoint(self, w: float) -> bool:
        """The paper's rule: checkpoint iff ``E(W_C) >= E(W_+1)``.

        Tie convention: at exactly ``w == W_int`` the rule checkpoints.
        When the crossing point is known (computed or pinned), the tie
        is answered from it directly — the advantage at the root is a
        floating-point residual of either sign, and deciding from it
        would let the scalar path disagree with the cached threshold
        comparison ``w >= W_int`` at the boundary.
        """
        if self._crossing_cache is not None and w == self._crossing_cache:
            return True
        return self.advantage(w) >= 0.0

    def pin_crossing(self, w_int: float) -> None:
        """Install a precomputed crossing point (e.g. from a compiled
        policy or a :class:`repro.kernels.PolicyTable`) so
        :meth:`crossing_point` is O(1) and the tie convention at
        ``w == w_int`` matches the threshold comparison exactly."""
        self._crossing_cache = float(w_int)

    # -- threshold / curves ---------------------------------------------------

    def decision_curve(self, points: int = 201) -> DecisionCurve:
        """Sample both expectations on a work grid (for Figures 8-10)."""
        w = np.linspace(0.0, self.R, points)
        ckpt = self.expected_if_checkpoint(w)
        cont = np.array([self.expected_if_continue(float(wi)) for wi in w])
        return DecisionCurve(w=w, checkpoint_now=ckpt, one_more_task=cont)

    def crossing_point(self, scan_points: int = 257) -> float:
        """The work threshold ``W_int`` where the two curves intersect.

        Checkpointing is optimal (under the one-step rule) exactly for
        ``w >= W_int``. Located by a sign-change scan of the advantage
        followed by Brent root-finding. Degenerate cases: returns ``0``
        if checkpointing always wins and ``R`` if it never does.
        """
        if self._crossing_cache is not None:
            return self._crossing_cache
        ws = np.linspace(0.0, self.R, scan_points)
        adv = np.array([self.advantage(float(wi)) for wi in ws])
        crossing = self.R
        if adv[0] >= 0.0:
            crossing = 0.0
        else:
            sign_change = np.nonzero((adv[:-1] < 0.0) & (adv[1:] >= 0.0))[0]
            if sign_change.size:
                i = int(sign_change[0])
                crossing = float(
                    optimize.brentq(self.advantage, ws[i], ws[i + 1], xtol=1e-10)
                )
        self._crossing_cache = crossing
        return crossing

    def threshold(self) -> float:
        """Alias for :meth:`crossing_point` (the simulator's fast path)."""
        return self.crossing_point()
