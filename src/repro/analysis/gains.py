"""Gain of the optimal strategies over the pessimistic baseline.

The paper's headline quantitative claim ("an important result was to
assess the gain that can be achieved over the pessimistic (but
risk-free) approach") is made sweep-able here:

* :func:`preemptible_gain` — one (R, D_C) instance;
* :func:`preemptible_gain_grid` — a grid of instances;
* :func:`workflow_gains` — Monte-Carlo comparison of the workflow
  policies (static / dynamic / optimal-stopping / oracle) on one
  instance, the experiment the conclusion predicts will show larger
  gains than the preemptible case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .._validation import check_integer
from ..core import preemptible
from ..core.policies import (
    DynamicPolicy,
    OptimalStoppingPolicy,
    StaticOptimalPolicy,
    WorkflowPolicy,
)
from ..distributions import Distribution, RngLike
from ..simulation.montecarlo import simulate_oracle, simulate_policy
from ..simulation.results import PolicyComparison, compare_policies

__all__ = [
    "GainPoint",
    "preemptible_gain",
    "preemptible_gain_grid",
    "workflow_gains",
]


@dataclass(frozen=True)
class GainPoint:
    """One row of a gain table.

    ``gain`` is ``E(W(X_opt)) / E(W(b))``: > 1 whenever the optimal
    strategy beats always-assuming-the-worst-case checkpoint.
    """

    R: float
    a: float
    b: float
    x_opt: float
    expected_work_opt: float
    pessimistic_work: float
    gain: float


def preemptible_gain(R: float, law: Distribution) -> GainPoint:
    """Gain of the optimal margin over ``X = b`` for one instance."""
    sol = preemptible.solve(R, law)
    a, b = law.support
    return GainPoint(
        R=R,
        a=a,
        b=b,
        x_opt=sol.x_opt,
        expected_work_opt=sol.expected_work_opt,
        pessimistic_work=sol.pessimistic_work,
        gain=sol.gain,
    )


def preemptible_gain_grid(
    law_builder: Callable[[float, float], Distribution],
    R_values: Sequence[float],
    b_values: Sequence[float],
    *,
    a: float = 1.0,
) -> list[GainPoint]:
    """Gain table over a grid of reservations and worst-case durations.

    Parameters
    ----------
    law_builder:
        ``(a, b) -> Distribution`` building the checkpoint law for a
        support choice (e.g. ``Uniform`` or a truncation lambda).
    R_values, b_values:
        Grid axes. Combinations with ``b >= R`` or ``b <= a`` are
        skipped (outside the paper's framework).
    a:
        Common lower support bound ``C_min``.
    """
    points: list[GainPoint] = []
    for R in R_values:
        for b in b_values:
            if not a < b <= R:
                continue
            points.append(preemptible_gain(float(R), law_builder(float(a), float(b))))
    return points


def workflow_gains(
    R: float,
    task_law: Distribution,
    checkpoint_law: Distribution,
    *,
    n_trials: int = 100_000,
    rng: RngLike = None,
    extra_policies: dict[str, WorkflowPolicy] | None = None,
    include_oracle: bool = True,
) -> PolicyComparison:
    """Monte-Carlo comparison of the workflow strategies on one instance.

    Always includes the static-optimal and dynamic policies and the
    optimal-stopping extension; ``extra_policies`` adds baselines (e.g.
    a deliberately mis-tuned static count); ``include_oracle`` adds the
    clairvoyant upper bound.
    """
    n_trials = check_integer(n_trials, "n_trials", minimum=2)
    samples: dict[str, np.ndarray] = {}
    policies: dict[str, WorkflowPolicy] = {
        "static-optimal": StaticOptimalPolicy(task_law, checkpoint_law),
        "dynamic": DynamicPolicy(task_law, checkpoint_law),
        "optimal-stopping": OptimalStoppingPolicy(task_law, checkpoint_law),
    }
    if extra_policies:
        policies.update(extra_policies)
    for name, policy in policies.items():
        samples[name] = simulate_policy(R, task_law, checkpoint_law, policy, n_trials, rng)
    if include_oracle:
        samples["oracle"] = simulate_oracle(R, task_law, checkpoint_law, n_trials, rng)
    return compare_policies(samples)
