"""Parameter sweeps and crossover localization.

The conclusions the paper states qualitatively ("the dynamic strategy
is to be preferred", "the pessimistic approach is not always a good
strategy") become measurable curves here: sweep a scalar parameter,
collect a metric per policy, and find where the curves cross.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .series import Series

__all__ = ["sweep", "find_crossover", "SweepResult"]


@dataclass(frozen=True)
class SweepResult:
    """Outcome of :func:`sweep`: one series per metric name."""

    parameter: str
    series: dict[str, Series]

    def crossover(self, name_a: str, name_b: str) -> float | None:
        """Parameter value where metric ``name_a`` overtakes ``name_b``."""
        return find_crossover(self.series[name_a], self.series[name_b])

    def table(self, fmt: str = "{:.4g}") -> str:
        """Fixed-width text table: one row per parameter value."""
        names = list(self.series)
        xs = self.series[names[0]].x
        header = f"{self.parameter:>12}  " + "  ".join(f"{n:>16}" for n in names)
        lines = [header]
        for i, x in enumerate(xs):
            cells = "  ".join(f"{fmt.format(self.series[n].y[i]):>16}" for n in names)
            lines.append(f"{fmt.format(x):>12}  {cells}")
        return "\n".join(lines)


def sweep(
    parameter: str,
    values: Sequence[float],
    evaluate: Callable[[float], dict[str, float]],
) -> SweepResult:
    """Evaluate named metrics over a parameter range.

    Parameters
    ----------
    parameter:
        Axis label (for tables/plots).
    values:
        Parameter values, in plotting order.
    evaluate:
        ``value -> {metric_name: metric_value}``; must return the same
        keys for every value.
    """
    values_arr = np.asarray(list(values), dtype=float)
    if values_arr.size == 0:
        raise ValueError("sweep needs at least one parameter value")
    rows = [evaluate(float(v)) for v in values_arr]
    names = list(rows[0])
    for i, row in enumerate(rows):
        if list(row) != names:
            raise ValueError(
                f"evaluate returned inconsistent metric names at value "
                f"{values_arr[i]}: {list(row)} vs {names}"
            )
    series = {
        name: Series(values_arr, np.array([row[name] for row in rows]), name)
        for name in names
    }
    return SweepResult(parameter=parameter, series=series)


def find_crossover(a: Series, b: Series) -> float | None:
    """First x where ``a`` overtakes ``b`` (sign change of ``a - b``).

    Returns ``None`` if the difference never changes sign; the crossing
    abscissa is linearly interpolated between grid points.
    """
    if a.x.shape != b.x.shape or not np.allclose(a.x, b.x):
        raise ValueError("series must share the same x grid")
    diff = a.y - b.y
    sign = np.sign(diff)
    changes = np.nonzero(np.diff(sign) != 0)[0]
    # Ignore touch-without-cross points (sign 0 runs).
    for i in changes:
        d0, d1 = diff[i], diff[i + 1]
        if d0 == d1:
            continue
        t = d0 / (d0 - d1)
        return float(a.x[i] + t * (a.x[i + 1] - a.x[i]))
    return None
