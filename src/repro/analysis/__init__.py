"""Analysis utilities: curves, sweeps and gain tables."""

from .gains import GainPoint, preemptible_gain, preemptible_gain_grid, workflow_gains
from .reporting import ReportStatus, collect_reports, write_summary
from .sizing import (
    QueueModel,
    SizingPoint,
    evaluate_reservation_length,
    optimize_reservation_length,
)
from .series import (
    Series,
    dynamic_decision_curves,
    expected_work_curve,
    static_relaxation_curve,
)
from .sweeps import SweepResult, find_crossover, sweep

__all__ = [
    "Series",
    "expected_work_curve",
    "static_relaxation_curve",
    "dynamic_decision_curves",
    "GainPoint",
    "preemptible_gain",
    "preemptible_gain_grid",
    "workflow_gains",
    "sweep",
    "find_crossover",
    "SweepResult",
    "QueueModel",
    "SizingPoint",
    "evaluate_reservation_length",
    "optimize_reservation_length",
    "ReportStatus",
    "collect_reports",
    "write_summary",
]
