"""Consolidation of benchmark artifacts into one summary document.

Every bench in ``benchmarks/`` writes a ``results/<name>.txt`` report;
:func:`collect_reports` stitches them into a single Markdown summary
(``results/SUMMARY.md`` by convention) with a pass/diff table on top —
the one-file answer to "did the reproduction hold?".
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass

__all__ = ["ReportStatus", "collect_reports", "write_summary"]

_ANCHOR_RE = re.compile(r"\[(OK |DIFF)\]")


@dataclass(frozen=True)
class ReportStatus:
    """Pass/fail accounting for one bench report."""

    name: str
    anchors_ok: int
    anchors_diff: int

    @property
    def passed(self) -> bool:
        return self.anchors_diff == 0


def collect_reports(results_dir: str) -> tuple[list[ReportStatus], str]:
    """Read every ``*.txt`` report and build the Markdown summary.

    Returns ``(statuses, markdown)``. Raises ``FileNotFoundError`` if
    the directory does not exist and ``ValueError`` if it contains no
    reports (run the benchmarks first).
    """
    if not os.path.isdir(results_dir):
        raise FileNotFoundError(f"no results directory at {results_dir!r}")
    names = sorted(
        f[:-4] for f in os.listdir(results_dir) if f.endswith(".txt")
    )
    if not names:
        raise ValueError(
            f"no reports in {results_dir!r}; run pytest benchmarks/ --benchmark-only"
        )
    statuses: list[ReportStatus] = []
    sections: list[str] = []
    for name in names:
        with open(os.path.join(results_dir, f"{name}.txt")) as fh:
            body = fh.read()
        marks = _ANCHOR_RE.findall(body)
        status = ReportStatus(
            name=name,
            anchors_ok=sum(1 for m in marks if m == "OK "),
            anchors_diff=sum(1 for m in marks if m == "DIFF"),
        )
        statuses.append(status)
        sections.append(f"## {name}\n\n```\n{body.rstrip()}\n```\n")
    table = [
        "| report | anchors OK | anchors DIFF | status |",
        "|---|---|---|---|",
    ]
    for s in statuses:
        flag = "pass" if s.passed else "**DIFF**"
        table.append(f"| {s.name} | {s.anchors_ok} | {s.anchors_diff} | {flag} |")
    total_ok = sum(s.anchors_ok for s in statuses)
    total_diff = sum(s.anchors_diff for s in statuses)
    header = (
        "# Reproduction summary\n\n"
        f"{len(statuses)} reports, {total_ok} anchors within tolerance, "
        f"{total_diff} outside.\n\n" + "\n".join(table) + "\n"
    )
    return statuses, header + "\n" + "\n".join(sections)


def write_summary(results_dir: str, output: str | None = None) -> str:
    """Write the consolidated summary; returns its path."""
    statuses, markdown = collect_reports(results_dir)
    if output is None:
        output = os.path.join(results_dir, "SUMMARY.md")
    with open(output, "w") as fh:
        fh.write(markdown)
    return output
