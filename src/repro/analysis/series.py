"""Named data series: the exchange format between solvers, benches and
plotting.

Every figure of the paper is, at bottom, a handful of ``(x, y)`` series;
:class:`Series` carries them with a label, and the builders in this
module sample the paper's curves directly from the core solvers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray

from .._validation import check_integer
from ..core.dynamic import DynamicStrategy
from ..core.preemptible import expected_work
from ..core.static import StaticStrategy
from ..distributions import Distribution

__all__ = [
    "Series",
    "expected_work_curve",
    "static_relaxation_curve",
    "dynamic_decision_curves",
]


@dataclass(frozen=True)
class Series:
    """An immutable labeled ``(x, y)`` polyline."""

    x: NDArray[np.float64]
    y: NDArray[np.float64]
    label: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "x", np.asarray(self.x, dtype=float))
        object.__setattr__(self, "y", np.asarray(self.y, dtype=float))
        if self.x.ndim != 1 or self.x.shape != self.y.shape:
            raise ValueError("x and y must be 1-D arrays of equal length")
        if self.x.size == 0:
            raise ValueError("series must contain at least one point")

    @property
    def argmax(self) -> tuple[float, float]:
        """``(x, y)`` at the series' maximum."""
        i = int(np.argmax(self.y))
        return float(self.x[i]), float(self.y[i])

    def at(self, x0: float) -> float:
        """Linear interpolation of ``y`` at ``x0``."""
        return float(np.interp(x0, self.x, self.y))


def expected_work_curve(
    R: float,
    law: Distribution,
    points: int = 401,
    *,
    label: str | None = None,
) -> Series:
    """``E(W(X))`` on ``X in [a, R]`` — the curve of Figures 1-4."""
    points = check_integer(points, "points", minimum=2)
    a = law.lower
    xs = np.linspace(a, R, points)
    ys = np.asarray(expected_work(R, law, xs), dtype=float)
    return Series(xs, ys, label or f"E(W(X)), R={R:g}")


def static_relaxation_curve(
    strategy: StaticStrategy,
    y_max: float | None = None,
    points: int = 201,
    *,
    label: str | None = None,
) -> Series:
    """The continuous relaxation ``y -> E(y)`` — Figures 5-7."""
    points = check_integer(points, "points", minimum=2)
    if y_max is None:
        y_max = 2.0 * strategy.R / strategy.task_law.mean()
    ys_axis = np.linspace(0.25, y_max, points)
    vals = np.array([strategy.expected_work(float(y)) for y in ys_axis])
    return Series(ys_axis, vals, label or "E(n) relaxation")


def dynamic_decision_curves(
    strategy: DynamicStrategy,
    points: int = 201,
) -> tuple[Series, Series]:
    """``E(W_C)`` and ``E(W_+1)`` vs accumulated work — Figures 8-10."""
    curve = strategy.decision_curve(points)
    return (
        Series(curve.w, curve.checkpoint_now, "E(W_C) checkpoint now"),
        Series(curve.w, curve.one_more_task, "E(W_+1) one more task"),
    )
