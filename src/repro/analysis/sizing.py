"""Choosing the reservation length itself.

Section 2 of the paper: the total execution time is unknown, "which
calls for a series of fixed-length reservations of duration R, where R
depends upon many parameters provided both by the user ... and the
resource provider (availability and cost of each reservation)". The
paper treats R as given; this module closes the loop and *chooses* it.

Model
-----
* each reservation of length ``R`` waits ``wait(R)`` in the batch queue
  before starting (:class:`QueueModel`: longer reservations are harder
  to place — the paper's stated reason for splitting reservations);
* the first reservation works on a budget ``R``; later ones pay the
  recovery ``r`` first;
* within a reservation the chosen strategy saves
  ``V(R') = OptimalStopping value`` of the effective budget in
  expectation (an upper-bound proxy shared by all policies; any policy
  in :mod:`repro.core.policies` can be substituted via Monte Carlo);
* the application needs ``total_work``; the expected number of
  reservations is ``ceil-like total_work / V`` (renewal approximation).

:func:`optimize_reservation_length` sweeps candidate ``R`` values and
reports expected makespan (wait + run) and cost under either billing
model; its correctness relative to simulation is checked by
``benchmarks/bench_sizing.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


from .._validation import check_nonnegative, check_positive
from ..core.campaign import BillingModel
from ..core.optimal_stopping import OptimalStoppingSolver
from ..distributions import Distribution

__all__ = ["QueueModel", "SizingPoint", "evaluate_reservation_length", "optimize_reservation_length"]


@dataclass(frozen=True)
class QueueModel:
    """Batch-queue wait time as a function of reservation length.

    ``wait(R) = base + coefficient * R**exponent`` — the standard
    empirical shape: short reservations backfill quickly, long ones
    wait superlinearly.
    """

    base: float = 60.0
    coefficient: float = 1.0
    exponent: float = 1.5

    def __post_init__(self) -> None:
        check_nonnegative(self.base, "base")
        check_nonnegative(self.coefficient, "coefficient")
        check_positive(self.exponent, "exponent")

    def wait(self, R: float) -> float:
        """Expected queue wait before a reservation of length ``R``."""
        R = check_positive(R, "R")
        return self.base + self.coefficient * R**self.exponent


@dataclass(frozen=True)
class SizingPoint:
    """Evaluation of one candidate reservation length.

    Attributes
    ----------
    R:
        Candidate reservation length.
    expected_work_per_reservation:
        Renewal-unit progress (steady-state reservation, recovery paid).
    expected_reservations:
        ``total_work / progress`` (continuous renewal approximation).
    expected_makespan:
        Total wait + reserved time.
    expected_cost:
        Under the requested billing model at the given rate.
    """

    R: float
    expected_work_per_reservation: float
    expected_reservations: float
    expected_makespan: float
    expected_cost: float


def evaluate_reservation_length(
    R: float,
    total_work: float,
    task_law: Distribution,
    checkpoint_law: Distribution,
    *,
    recovery: float = 0.0,
    queue: QueueModel | None = None,
    billing: BillingModel = BillingModel.BY_RESERVATION,
    price_per_second: float = 1.0,
    grid_points: int = 801,
) -> SizingPoint:
    """Evaluate one candidate ``R`` under the renewal model."""
    R = check_positive(R, "R")
    total_work = check_positive(total_work, "total_work")
    recovery = check_nonnegative(recovery, "recovery")
    check_nonnegative(price_per_second, "price_per_second")
    if recovery >= R:
        raise ValueError(f"recovery {recovery} consumes the whole reservation {R}")
    queue = queue or QueueModel()
    budget = R - recovery
    solver = OptimalStoppingSolver(budget, task_law, checkpoint_law, grid_points=grid_points)
    progress = solver.solve().value_at_start
    if progress <= 0.0:
        return SizingPoint(R, 0.0, math.inf, math.inf, math.inf)
    n_res = total_work / progress
    makespan = n_res * (queue.wait(R) + R)
    if billing is BillingModel.BY_RESERVATION:
        cost = price_per_second * n_res * R
    else:
        # Usage ~ progress + one checkpoint + recovery per reservation.
        usage = progress + checkpoint_law.mean() + recovery
        cost = price_per_second * n_res * usage
    return SizingPoint(
        R=R,
        expected_work_per_reservation=progress,
        expected_reservations=n_res,
        expected_makespan=makespan,
        expected_cost=cost,
    )


def optimize_reservation_length(
    candidates: Sequence[float],
    total_work: float,
    task_law: Distribution,
    checkpoint_law: Distribution,
    *,
    objective: str = "makespan",
    recovery: float = 0.0,
    queue: QueueModel | None = None,
    billing: BillingModel = BillingModel.BY_RESERVATION,
    price_per_second: float = 1.0,
) -> tuple[SizingPoint, list[SizingPoint]]:
    """Pick the best ``R`` among ``candidates``.

    Parameters
    ----------
    candidates:
        Reservation lengths to evaluate (must exceed ``recovery`` and
        leave room for at least a minimal checkpoint).
    objective:
        ``"makespan"`` or ``"cost"``.

    Returns
    -------
    (best, points):
        The winning :class:`SizingPoint` and all evaluated points (in
        candidate order) for tabulation.
    """
    if objective not in ("makespan", "cost"):
        raise ValueError(f"objective must be 'makespan' or 'cost', got {objective!r}")
    if not candidates:
        raise ValueError("need at least one candidate R")
    points = [
        evaluate_reservation_length(
            float(R), total_work, task_law, checkpoint_law,
            recovery=recovery, queue=queue, billing=billing,
            price_per_second=price_per_second,
        )
        for R in candidates
    ]
    key = (lambda p: p.expected_makespan) if objective == "makespan" else (lambda p: p.expected_cost)
    best = min(points, key=key)
    return best, points
