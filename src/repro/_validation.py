"""Shared argument-validation helpers.

Every public entry point of :mod:`repro` validates its scalar arguments
through these helpers so that error messages are uniform across the
library and so that misuse fails fast with an explanatory message rather
than deep inside a scipy routine.
"""

from __future__ import annotations

import math
from typing import Optional, Union

import numpy as np

__all__ = [
    "check_positive",
    "check_nonnegative",
    "check_finite",
    "check_in_range",
    "check_interval",
    "check_probability",
    "check_integer",
    "as_generator",
]


def check_finite(value: float, name: str) -> float:
    """Return ``value`` as a float, raising ``ValueError`` if non-finite."""
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value


def check_positive(value: float, name: str) -> float:
    """Return ``value`` as a float, raising ``ValueError`` unless > 0."""
    value = check_finite(value, name)
    if value <= 0.0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_nonnegative(value: float, name: str) -> float:
    """Return ``value`` as a float, raising ``ValueError`` unless >= 0."""
    value = check_finite(value, name)
    if value < 0.0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(
    value: float,
    name: str,
    lo: float = -math.inf,
    hi: float = math.inf,
    *,
    lo_open: bool = False,
    hi_open: bool = False,
) -> float:
    """Return ``value`` as a float after checking it lies in an interval.

    Parameters
    ----------
    value:
        The scalar to validate.
    name:
        Argument name used in the error message.
    lo, hi:
        Interval bounds.
    lo_open, hi_open:
        Whether the corresponding bound is excluded.
    """
    value = check_finite(value, name) if math.isfinite(value) else float(value)
    lo_bad = value < lo or (lo_open and value == lo)
    hi_bad = value > hi or (hi_open and value == hi)
    if lo_bad or hi_bad:
        lo_b = "(" if lo_open else "["
        hi_b = ")" if hi_open else "]"
        raise ValueError(
            f"{name} must lie in {lo_b}{lo}, {hi}{hi_b}, got {value!r}"
        )
    return value


def check_interval(lo: float, hi: float, lo_name: str, hi_name: str) -> tuple[float, float]:
    """Validate an interval ``lo < hi`` and return it as floats."""
    lo = check_finite(lo, lo_name)
    hi = check_finite(hi, hi_name)
    if not lo < hi:
        raise ValueError(
            f"expected {lo_name} < {hi_name}, got {lo_name}={lo!r}, {hi_name}={hi!r}"
        )
    return lo, hi


def check_probability(value: float, name: str) -> float:
    """Return ``value`` as a float after checking it lies in [0, 1]."""
    return check_in_range(value, name, 0.0, 1.0)


def check_integer(value: Union[int, float], name: str, minimum: Optional[int] = None) -> int:
    """Return ``value`` as an int, raising ``ValueError`` if not integral.

    Accepts floats with integral values (``3.0``) for convenience since
    optimizers frequently hand back floats.
    """
    if isinstance(value, bool):
        raise ValueError(f"{name} must be an integer, got bool {value!r}")
    if isinstance(value, float):
        if not value.is_integer():
            raise ValueError(f"{name} must be integral, got {value!r}")
        value = int(value)
    elif isinstance(value, (int, np.integer)):
        value = int(value)
    else:
        raise ValueError(f"{name} must be an integer, got {type(value).__name__}")
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def as_generator(
    rng: Union[None, int, np.random.Generator, np.random.SeedSequence]
) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Accepts an integer seed, a :class:`numpy.random.SeedSequence`, or an
    existing generator (which is returned unchanged so that state threads
    through the caller). ``None`` — the "surprise me" fresh-entropy
    generator — is rejected: every sampling path in this library must be
    reproducible from an explicit seed (lint rule REP001), because the
    paper's ``E(W(X))`` / ``E(n)`` formulas are validated against
    Monte-Carlo runs that have to be repeatable to count as evidence.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        raise TypeError(
            "rng is required: pass an int seed, a SeedSequence, or a numpy "
            "Generator (unseeded fresh-entropy generators break Monte-Carlo "
            "reproducibility; see docs/linting.md REP001)"
        )
    if isinstance(rng, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(rng)
    raise TypeError(
        "rng must be an int seed, a SeedSequence, or a numpy Generator; "
        f"got {type(rng).__name__}"
    )
