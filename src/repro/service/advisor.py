"""Batched checkpoint advice from cached policies.

``DynamicStrategy.should_checkpoint`` answers one query with one
quadrature (+ a root-finding pass the first time). The advisor answers
the same question from the compiled policy: the paper's rule
"checkpoint iff ``E(W_C) >= E(W_+1)``" is, by construction of
:meth:`DynamicStrategy.crossing_point`, equivalent to the O(1)
comparison ``work >= W_int`` — so a batch of thousands of
``(work_done, time_left)`` queries is a single vectorized comparison,
and the supporting expectations are vectorized interpolations into the
policy's :class:`repro.kernels.PolicyTable`.

Queries may carry an explicit ``time_left``. The dynamic rule depends
on the pair only through the *effective reservation* ``work + time_left``
(the decision at work ``w`` with ``t`` remaining equals the decision of
the ``R' = w + t`` instance at work ``w``), so off-nominal queries —
e.g. a reservation that started late, or lost time to a failure — are
served by fetching the ``R'`` policy from the same cache.

``kernel="exact"`` switches every query to the scalar oracle
(quadrature per expectation, exact advantage per decision, with the
crossing point pinned from the compiled policy so the tie at
``work == W_int`` matches the fast path). It exists for differential
tests and paranoid verification, not for serving.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike, NDArray

from ..core.dynamic import DynamicStrategy
from ..obs.tracer import NULL_SPAN, Tracer
from .cache import CompiledPolicy, LawLike, PolicyCache, _as_law
from .metrics import ServiceMetrics

__all__ = ["Advice", "Advisor"]


@dataclass(frozen=True)
class Advice:
    """One checkpoint/continue decision with its supporting numbers.

    ``expected_if_checkpoint`` / ``expected_if_continue`` are read off
    the policy's kernel table (linear interpolation on an adaptive
    grid), so they are plot-quality, not quadrature-exact; the
    *decision* itself uses the exact threshold.
    """

    work: float
    time_left: float
    checkpoint: bool
    threshold: float
    expected_if_checkpoint: float
    expected_if_continue: float
    reservation: float

    def to_dict(self) -> dict[str, object]:
        return {
            "work": self.work,
            "time_left": self.time_left,
            "checkpoint": self.checkpoint,
            "action": "checkpoint" if self.checkpoint else "continue",
            "threshold": self.threshold,
            "expected_if_checkpoint": self.expected_if_checkpoint,
            "expected_if_continue": self.expected_if_continue,
            "reservation": self.reservation,
        }


class Advisor:
    """Answer checkpoint queries through a :class:`PolicyCache`.

    Parameters
    ----------
    cache:
        Shared policy cache (a private one is created if omitted,
        inheriting ``kernel``).
    metrics:
        Optional metrics sink; receives ``advise.queries`` increments
        and the ``advise.batch_size`` histogram.
    tracer:
        Optional span tracer; batched queries get an
        ``advisor.advise_batch`` span (with cache-compile spans nested
        when a policy must be built). The single-query and
        ``decide_batch`` hot paths stay span-free by design.
    kernel:
        ``"table"`` (default) serves decisions and expectations from
        the compiled artifacts; ``"exact"`` re-derives every answer
        with the scalar oracle (one quadrature per expectation). See
        ``docs/kernels.md`` for when to force ``exact``.
    """

    def __init__(
        self,
        cache: PolicyCache | None = None,
        metrics: ServiceMetrics | None = None,
        tracer: Tracer | None = None,
        *,
        kernel: str = "table",
    ) -> None:
        if kernel not in ("table", "exact"):
            raise ValueError(f"kernel must be 'table' or 'exact', got {kernel!r}")
        if cache is None:
            cache = PolicyCache(metrics=metrics, tracer=tracer, kernel=kernel)
        elif tracer is not None and cache.tracer is None:
            cache.tracer = tracer
        self.cache = cache
        self.metrics = metrics
        self.tracer = tracer
        self.kernel = kernel
        self._oracles: dict[str, DynamicStrategy] = {}

    # -- policy access ---------------------------------------------------

    def policy(
        self, reservation: float, task_law: LawLike, checkpoint_law: LawLike
    ) -> CompiledPolicy:
        """The compiled policy for the triple (cache hit or compile)."""
        return self.cache.get(reservation, task_law, checkpoint_law)

    def warm(
        self, reservation: float, task_law: LawLike, checkpoint_law: LawLike
    ) -> CompiledPolicy:
        """Precompile a policy so later queries are O(1)."""
        return self.cache.warm(reservation, task_law, checkpoint_law)

    # -- queries ---------------------------------------------------------

    def advise(
        self,
        reservation: float,
        task_law: LawLike,
        checkpoint_law: LawLike,
        work: float,
        time_left: float | None = None,
    ) -> Advice:
        """Checkpoint-or-continue at accumulated work ``work``.

        ``time_left`` defaults to the nominal ``reservation - work``;
        passing a different value re-anchors the decision on the
        effective reservation ``work + time_left``.
        """
        work = float(work)
        if work < 0.0:
            raise ValueError(f"work must be >= 0, got {work}")
        if time_left is None:
            time_left = float(reservation) - work
        time_left = float(time_left)
        if time_left < 0.0:
            raise ValueError(f"time_left must be >= 0, got {time_left}")
        effective_r = work + time_left
        if not effective_r > 0.0:
            raise ValueError("work + time_left must be positive")
        policy = self.cache.get(effective_r, task_law, checkpoint_law)
        if self.metrics is not None:
            self.metrics.incr("advise.queries")
        if self.kernel == "exact":
            oracle = self._oracle(policy, task_law, checkpoint_law)
            return self._advice_from_oracle(oracle, policy, work, time_left)
        return self._advice_from_policy(policy, work, time_left)

    def advise_batch(
        self,
        reservation: float,
        task_law: LawLike,
        checkpoint_law: LawLike,
        work: ArrayLike,
        time_left: ArrayLike | None = None,
    ) -> list[Advice]:
        """Vectorized :meth:`advise` over arrays of queries.

        Queries are grouped by effective reservation, so each distinct
        ``R'`` costs at most one cache access; within a group the
        decisions are one threshold comparison and the expectations two
        table interpolations — no per-item Python work beyond
        materializing the :class:`Advice` objects.
        """
        work_arr = np.atleast_1d(np.asarray(work, dtype=float))
        if work_arr.ndim != 1:
            raise ValueError("work must be a scalar or 1-d array")
        if np.any(work_arr < 0.0):
            raise ValueError("work values must be >= 0")
        if time_left is None:
            tl_arr = float(reservation) - work_arr
        else:
            tl_arr = np.broadcast_to(
                np.asarray(time_left, dtype=float), work_arr.shape
            ).astype(float)
        if np.any(tl_arr < 0.0):
            raise ValueError("time_left values must be >= 0")
        if self.metrics is not None:
            self.metrics.incr("advise.queries", int(work_arr.size))
            self.metrics.observe("advise.batch_size", float(work_arr.size))

        span_cm = (
            self.tracer.span("advisor.advise_batch")
            if self.tracer is not None and self.tracer.enabled
            else NULL_SPAN
        )
        with span_cm as span:
            effective_r = work_arr + tl_arr
            decisions = np.empty(work_arr.size, dtype=bool)
            e_ckpt = np.empty(work_arr.size, dtype=float)
            e_cont = np.empty(work_arr.size, dtype=float)
            thresholds = np.empty(work_arr.size, dtype=float)
            # Group by effective reservation: one policy fetch per distinct R'.
            uniq, inverse = np.unique(effective_r, return_inverse=True)
            span.set_tag("batch_size", int(work_arr.size))
            span.set_tag("distinct_reservations", int(uniq.size))
            span.set_tag("kernel", self.kernel)
            for group, r_eff in enumerate(uniq):
                if not r_eff > 0.0:
                    raise ValueError("work + time_left must be positive")
                policy = self.cache.get(float(r_eff), task_law, checkpoint_law)
                idx = inverse == group
                wk = work_arr[idx]
                if self.kernel == "exact":
                    oracle = self._oracle(policy, task_law, checkpoint_law)
                    decisions[idx] = [
                        oracle.should_checkpoint(float(wi)) for wi in wk
                    ]
                    e_ckpt[idx] = oracle.expected_if_checkpoint(wk)
                    e_cont[idx] = [
                        oracle.expected_if_continue(float(wi)) for wi in wk
                    ]
                else:
                    decisions[idx] = self._decide(policy, wk)
                    e_ckpt[idx] = policy.e_checkpoint_at(wk)
                    e_cont[idx] = policy.e_continue_at(wk)
                thresholds[idx] = self._threshold(policy)
            reservations = effective_r
        return [
            Advice(
                work=float(work_arr[i]),
                time_left=float(tl_arr[i]),
                checkpoint=bool(decisions[i]),
                threshold=float(thresholds[i]),
                expected_if_checkpoint=float(e_ckpt[i]),
                expected_if_continue=float(e_cont[i]),
                reservation=float(reservations[i]),
            )
            for i in range(work_arr.size)
        ]

    def decide_batch(
        self,
        reservation: float,
        task_law: LawLike,
        checkpoint_law: LawLike,
        work: ArrayLike,
    ) -> NDArray[np.bool_]:
        """Decisions only (no per-query objects): the hottest path.

        Returns a boolean array aligned with ``work``; all queries are
        nominal (``time_left = reservation - work``).
        """
        work_arr = np.atleast_1d(np.asarray(work, dtype=float))
        policy = self.cache.get(reservation, task_law, checkpoint_law)
        if self.metrics is not None:
            self.metrics.incr("advise.queries", int(work_arr.size))
        if self.kernel == "exact":
            oracle = self._oracle(policy, task_law, checkpoint_law)
            return np.asarray(
                [oracle.should_checkpoint(float(wi)) for wi in work_arr], dtype=bool
            )
        return self._decide(policy, work_arr)

    # -- internals -------------------------------------------------------

    @staticmethod
    def _threshold(policy: CompiledPolicy) -> float:
        if policy.w_int is None:
            raise ValueError(
                "policy has no dynamic threshold (task law rejected by the "
                f"dynamic strategy): task={policy.task_spec}"
            )
        return float(policy.w_int)

    @staticmethod
    def _decide(policy: CompiledPolicy, work: NDArray[np.float64]) -> NDArray[np.bool_]:
        if policy.table is not None:
            return policy.table.decide(work)
        if policy.w_int is None:
            raise ValueError(
                "policy has no dynamic threshold (task law rejected by the "
                f"dynamic strategy): task={policy.task_spec}"
            )
        return np.asarray(work >= policy.w_int, dtype=np.bool_)

    def _oracle(
        self, policy: CompiledPolicy, task_law: LawLike, checkpoint_law: LawLike
    ) -> DynamicStrategy:
        """The exact scalar strategy for a policy's reservation.

        The crossing point is pinned from the compiled policy so the
        boundary decision at ``work == W_int`` is identical on both
        kernels (the compiled root *is* the exact brentq root).
        """
        if policy.key not in self._oracles:
            dyn = DynamicStrategy(
                policy.reservation,
                _as_law(task_law, "task_law"),
                _as_law(checkpoint_law, "checkpoint_law"),
            )
            if policy.w_int is not None:
                dyn.pin_crossing(policy.w_int)
            self._oracles[policy.key] = dyn
        return self._oracles[policy.key]

    def _advice_from_oracle(
        self,
        oracle: DynamicStrategy,
        policy: CompiledPolicy,
        work: float,
        time_left: float,
    ) -> Advice:
        return Advice(
            work=work,
            time_left=time_left,
            checkpoint=oracle.should_checkpoint(work),
            threshold=self._threshold(policy),
            expected_if_checkpoint=float(oracle.expected_if_checkpoint(work)),
            expected_if_continue=oracle.expected_if_continue(work),
            reservation=policy.reservation,
        )

    def _advice_from_policy(
        self, policy: CompiledPolicy, work: float, time_left: float
    ) -> Advice:
        decision = bool(self._decide(policy, np.asarray([work]))[0])
        return Advice(
            work=work,
            time_left=time_left,
            checkpoint=decision,
            threshold=self._threshold(policy),
            expected_if_checkpoint=float(policy.e_checkpoint_at(work)),
            expected_if_continue=float(policy.e_continue_at(work)),
            reservation=policy.reservation,
        )
