"""Checkpoint-advisor service: cached policies served at query rate.

The solvers in :mod:`repro.core` answer the paper's online questions by
quadrature and root-finding — hundreds of milliseconds per instance.
A scheduler driving real reservations asks those questions thousands of
times with the *same* laws, so this package layers (without touching
the math):

* :class:`PolicyCache` — content-addressed compilation cache keyed by
  canonical law specs + reservation, in-memory LRU with optional
  on-disk JSON persistence (:mod:`repro.service.cache`);
* :class:`Advisor` — O(1) single and vectorized batched queries against
  the cached decision threshold (:mod:`repro.service.advisor`);
* :class:`AdvisorServer` / :class:`Client` — an asyncio JSON-lines TCP
  server (``repro serve``) and a small blocking client
  (:mod:`repro.service.server`, :mod:`repro.service.client`);
* :class:`ServiceMetrics` — request/cache counters and latency
  histograms behind the ``stats`` endpoint
  (:mod:`repro.service.metrics`);
* :class:`ResilientClient` — retries with backoff + seeded jitter, a
  circuit breaker and local-advisor fallback so callers always get a
  decision (:mod:`repro.service.resilience`);
* :class:`ChaosProxy` — deterministic fault injection (``repro chaos``)
  proving the above under latency, resets, truncation, garbage and
  throttling (:mod:`repro.service.chaos`).
"""

from .advisor import Advice, Advisor
from .cache import CompiledPolicy, PolicyCache, canonical_key, compile_policy
from .chaos import ChaosConfig, ChaosProxy
from .client import Client, ResponseDesyncError, ServiceError
from .metrics import LatencyHistogram, ServiceMetrics
from .protocol import (
    OPS,
    ProtocolError,
    decode_line,
    encode,
    error_response,
    ok_response,
    trace_context,
)
from .resilience import (
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    ResilientClient,
    RetryPolicy,
)
from .server import AdvisorServer

__all__ = [
    "Advice",
    "Advisor",
    "AdvisorServer",
    "ChaosConfig",
    "ChaosProxy",
    "CircuitBreaker",
    "CircuitOpenError",
    "Client",
    "CompiledPolicy",
    "Deadline",
    "LatencyHistogram",
    "OPS",
    "PolicyCache",
    "ProtocolError",
    "ResilientClient",
    "ResponseDesyncError",
    "RetryPolicy",
    "ServiceError",
    "ServiceMetrics",
    "canonical_key",
    "compile_policy",
    "decode_line",
    "encode",
    "error_response",
    "ok_response",
    "trace_context",
]
