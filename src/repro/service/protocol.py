"""JSON-lines wire protocol for the advisor service.

One request per line, one response per line, UTF-8 JSON::

    -> {"op": "advise", "id": 7, "params": {"reservation": 29, ...}}
    <- {"id": 7, "ok": true, "result": {"action": "checkpoint", ...}}

Every response carries ``ok``; failures carry an *error envelope*
instead of a result::

    <- {"id": 7, "ok": false, "error": {"type": "invalid-params",
                                         "message": "..."}}

Error types: ``bad-json`` (line is not JSON), ``bad-request`` (JSON but
not a request object), ``unknown-op``, ``invalid-params`` (op rejected
the parameters), ``timeout`` (per-request deadline exceeded),
``overloaded`` (connection cap or in-flight bound reached — retryable
after backoff; sent with ``id: null`` when the connection itself was
shed before any request was read), ``internal`` (unexpected server-side
failure).

The ``id`` field is optional and echoed verbatim when present, so
clients may pipeline requests over one connection.

Requests may additionally carry a *trace context* so one logical
request can be followed across processes (see :mod:`repro.obs`)::

    -> {"op": "advise", "id": 7, "trace": {"trace_id": "4f2a...",
                                            "span_id": "91c0..."},
        "params": {...}}
    <- {"id": 7, "ok": true, "trace_id": "4f2a...", "result": {...}}

The server echoes ``trace_id`` on every response (success or error)
whose request carried a well-formed trace context, and opens its own
child span under ``span_id``. A malformed ``trace`` field is ignored
rather than rejected — tracing must never break a request.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "OPS",
    "ProtocolError",
    "decode_line",
    "encode",
    "error_response",
    "ok_response",
    "trace_context",
]

#: Operations the server understands.
OPS = (
    "ping",
    "health",
    "policy",
    "warm",
    "advise",
    "advise_batch",
    "observe",
    "stats",
    "shutdown",
)

MAX_LINE_BYTES = 4 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed request; ``kind`` selects the error-envelope type.

    ``request_id`` carries the request's ``id`` when it was recoverable
    from the malformed payload, so the error envelope can still be
    correlated by a pipelining client.
    """

    def __init__(self, kind: str, message: str, request_id: Any = None) -> None:
        super().__init__(message)
        self.kind = kind
        self.request_id = request_id


def encode(payload: dict[str, Any]) -> bytes:
    """Serialize one message to a newline-terminated JSON line.

    Strict JSON: a non-finite float anywhere in the payload raises
    ``ValueError`` here, at the boundary, rather than emitting the
    non-standard ``NaN`` / ``Infinity`` tokens a strict peer rejects.
    """
    return (
        json.dumps(payload, separators=(",", ":"), allow_nan=False) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes) -> dict[str, Any]:
    """Parse one request line into ``{"op": ..., "id": ..., "params": {...}}``.

    Raises
    ------
    ProtocolError
        With ``kind`` ``bad-json``, ``bad-request`` or ``unknown-op``.
    """
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("bad-json", f"request is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            "bad-request", f"request must be a JSON object, got {type(payload).__name__}"
        )
    request_id = payload.get("id")
    op = payload.get("op")
    if not isinstance(op, str):
        raise ProtocolError(
            "bad-request", "request is missing the 'op' string field", request_id
        )
    if op not in OPS:
        raise ProtocolError(
            "unknown-op", f"unknown op {op!r}; available: {', '.join(OPS)}", request_id
        )
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("bad-request", "'params' must be a JSON object", request_id)
    request: dict[str, Any] = {"op": op, "id": payload.get("id"), "params": params}
    trace = trace_context(payload)
    if trace is not None:
        request["trace"] = trace
    return request


def trace_context(payload: dict[str, Any]) -> dict[str, str | None] | None:
    """The well-formed trace context of a request payload, if any.

    Returns ``{"trace_id": str, "span_id": str | None}`` when the
    ``trace`` field carries at least a string ``trace_id``; anything
    malformed yields ``None`` (tracing must never fail a request).
    """
    trace = payload.get("trace")
    if not isinstance(trace, dict):
        return None
    trace_id = trace.get("trace_id")
    if not isinstance(trace_id, str) or not trace_id:
        return None
    span_id = trace.get("span_id")
    return {
        "trace_id": trace_id,
        "span_id": span_id if isinstance(span_id, str) and span_id else None,
    }


def ok_response(
    request_id: Any, result: dict[str, Any], trace_id: str | None = None
) -> dict[str, Any]:
    resp: dict[str, Any] = {"ok": True, "result": result}
    if request_id is not None:
        resp["id"] = request_id
    if trace_id is not None:
        resp["trace_id"] = trace_id
    return resp


def error_response(
    request_id: Any, kind: str, message: str, trace_id: str | None = None
) -> dict[str, Any]:
    resp: dict[str, Any] = {"ok": False, "error": {"type": kind, "message": message}}
    if request_id is not None:
        resp["id"] = request_id
    if trace_id is not None:
        resp["trace_id"] = trace_id
    return resp
