"""Blocking JSON-lines client for the advisor service.

A thin convenience over one TCP socket — the protocol is plain enough
to speak with ``nc``, but schedulers embedding the client get typed
helpers and error envelopes surfaced as :class:`ServiceError`.

Responses are matched to requests by ``id``: a late reply to an
earlier, timed-out request is discarded instead of being mis-attributed
to the current one, and an unparseable or uncorrelatable line raises
:class:`ResponseDesyncError` after resetting the connection. After any
transport failure the socket and receive buffer are dropped, so the
next call starts from a clean connection.

>>> with Client(port=port) as c:                        # doctest: +SKIP
...     c.warm(29.0, "normal:3,0.5@[0,inf]", "normal:5,0.4@[0,inf]")
...     c.advise(29.0, "normal:3,0.5@[0,inf]", "normal:5,0.4@[0,inf]", work=19.0)
"""

from __future__ import annotations

import socket
from types import TracebackType
from typing import Any, cast

from ..obs.tracer import Tracer
from .protocol import MAX_LINE_BYTES, encode

__all__ = ["Client", "ResponseDesyncError", "ServiceError"]


class ServiceError(RuntimeError):
    """An error envelope returned by the server."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"[{kind}] {message}")
        self.kind = kind


class ResponseDesyncError(ConnectionError):
    """The reply stream no longer lines up with our requests.

    Raised when a response line is not parseable JSON (garbage on the
    wire) or carries an ``id`` we cannot correlate. The client resets
    its connection before raising, so the caller (or a retry layer such
    as :class:`repro.service.ResilientClient`) can reconnect and
    resynchronize simply by issuing the next request.
    """


class Client:
    """Synchronous client holding one connection to an advisor server.

    Parameters
    ----------
    host, port:
        Server address.
    timeout:
        Socket timeout in seconds for connect and each reply.
    tracer:
        Optional span tracer. When enabled, each request opens a
        ``client.<op>`` span (root of a fresh trace unless an ambient
        span exists) and sends its trace context inside the protocol
        envelope, so the server's ``server.<op>`` span joins the same
        trace and the response echoes the ``trace_id``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float = 30.0,
        tracer: Tracer | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.tracer = tracer
        #: ``trace_id`` echoed by the most recent response (or ``None``).
        self.last_response_trace_id: str | None = None
        self._sock: socket.socket | None = None
        self._recv_buffer = b""
        self._next_id = 0

    # -- connection ------------------------------------------------------

    def connect(self) -> "Client":
        if self._sock is None:
            self._recv_buffer = b""
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
        self._recv_buffer = b""

    def set_timeout(self, timeout: float) -> None:
        """Adjust the socket timeout, including on a live connection."""
        self.timeout = timeout
        if self._sock is not None:
            self._sock.settimeout(timeout)

    def __enter__(self) -> "Client":
        return self.connect()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    # -- raw request -----------------------------------------------------

    def request(self, op: str, params: dict[str, Any] | None = None) -> dict[str, Any]:
        """Send one request, block for its response, return the result.

        Raises
        ------
        ServiceError
            When the server answers with an error envelope.
        ConnectionError
            When the connection drops before a full reply arrives, or
            the reply stream desyncs (:class:`ResponseDesyncError`).
        """
        self._next_id += 1
        request_id = self._next_id
        payload: dict[str, Any] = {"op": op, "id": request_id}
        if params is not None:
            payload["params"] = params
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            with tracer.span(f"client.{op}") as span:
                payload["trace"] = {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                }
                try:
                    return self._exchange(payload, request_id)
                except ServiceError as exc:
                    span.status = "error"
                    span.set_tag("error_kind", exc.kind)
                    raise
        return self._exchange(payload, request_id)

    def _exchange(self, payload: dict[str, Any], request_id: int) -> dict[str, Any]:
        """Send one encoded request and surface its correlated response."""
        self.connect()
        assert self._sock is not None
        try:
            self._sock.sendall(encode(payload))
            response = self._read_response(request_id)
        except OSError:
            # covers ConnectionError, socket.timeout and desync: drop the
            # dead socket and the stale buffer so a retry starts clean
            self.close()
            raise
        self.last_response_trace_id = response.get("trace_id")
        if not response.get("ok"):
            err = response.get("error") or {}
            raise ServiceError(
                err.get("type", "unknown"), err.get("message", "no message")
            )
        return cast("dict[str, Any]", response.get("result", {}))

    def _read_response(self, expected_id: int | None = None) -> dict[str, Any]:
        """Read response lines until one correlates with ``expected_id``.

        Stale replies — an ``id`` we already issued and gave up on after
        a timeout — are discarded. Connection-level error envelopes
        carry no ``id`` (e.g. ``overloaded`` shed before the request was
        read) and are returned as-is. Anything else that cannot be
        correlated raises :class:`ResponseDesyncError`.
        """
        import json

        while True:
            while b"\n" not in self._recv_buffer:
                if len(self._recv_buffer) > MAX_LINE_BYTES:
                    raise ConnectionError("response line exceeded the protocol limit")
                chunk = self._sock.recv(65536)  # type: ignore[union-attr]
                if not chunk:
                    raise ConnectionError("server closed the connection mid-response")
                self._recv_buffer += chunk
            line, _, self._recv_buffer = self._recv_buffer.partition(b"\n")
            try:
                response = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                raise ResponseDesyncError(
                    f"unparseable response line ({exc}); connection reset"
                ) from exc
            if not isinstance(response, dict):
                raise ResponseDesyncError(
                    f"response is not a JSON object: {type(response).__name__}"
                )
            response_id = response.get("id")
            if expected_id is None or response_id == expected_id:
                return response
            if response_id is None and not response.get("ok"):
                # connection-level error envelope (request never decoded)
                return response
            if isinstance(response_id, int) and response_id < expected_id:
                continue  # stale reply to a request we timed out on: discard
            raise ResponseDesyncError(
                f"response id {response_id!r} does not match request id {expected_id}"
            )

    # -- typed helpers ---------------------------------------------------

    def ping(self) -> bool:
        return bool(self.request("ping").get("pong"))

    def health(self) -> dict[str, Any]:
        return self.request("health")

    def stats(self, format: str | None = None) -> dict[str, Any]:
        return self.request("stats", {"format": format} if format else None)

    def metrics_prometheus(self) -> str:
        """The server's unified metrics in Prometheus text exposition."""
        return str(self.stats(format="prometheus")["exposition"])

    def observe(self, checkpoint_law: str, samples: list[float]) -> dict[str, Any]:
        """Report observed checkpoint durations; returns the drift report."""
        return self.request(
            "observe",
            {"checkpoint_law": checkpoint_law, "samples": list(samples)},
        )

    def shutdown(self) -> dict[str, Any]:
        return self.request("shutdown")

    def policy(
        self, reservation: float, task_law: str, checkpoint_law: str
    ) -> dict[str, Any]:
        return cast(
            "dict[str, Any]",
            self.request(
                "policy",
                {
                    "reservation": reservation,
                    "task_law": task_law,
                    "checkpoint_law": checkpoint_law,
                },
            )["policy"],
        )

    def warm(
        self, reservation: float, task_law: str, checkpoint_law: str
    ) -> dict[str, Any]:
        return cast(
            "dict[str, Any]",
            self.request(
                "warm",
                {
                    "reservation": reservation,
                    "task_law": task_law,
                    "checkpoint_law": checkpoint_law,
                },
            )["policy"],
        )

    def advise(
        self,
        reservation: float,
        task_law: str,
        checkpoint_law: str,
        work: float,
        time_left: float | None = None,
    ) -> dict[str, Any]:
        params: dict[str, Any] = {
            "reservation": reservation,
            "task_law": task_law,
            "checkpoint_law": checkpoint_law,
            "work": work,
        }
        if time_left is not None:
            params["time_left"] = time_left
        return self.request("advise", params)

    def advise_batch(
        self,
        reservation: float,
        task_law: str,
        checkpoint_law: str,
        work: list[float],
        time_left: list[float] | None = None,
    ) -> dict[str, Any]:
        params: dict[str, Any] = {
            "reservation": reservation,
            "task_law": task_law,
            "checkpoint_law": checkpoint_law,
            "work": list(work),
        }
        if time_left is not None:
            params["time_left"] = list(time_left)
        return self.request("advise_batch", params)
