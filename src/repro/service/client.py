"""Blocking JSON-lines client for the advisor service.

A thin convenience over one TCP socket — the protocol is plain enough
to speak with ``nc``, but schedulers embedding the client get typed
helpers and error envelopes surfaced as :class:`ServiceError`.

>>> with Client(port=port) as c:                        # doctest: +SKIP
...     c.warm(29.0, "normal:3,0.5@[0,inf]", "normal:5,0.4@[0,inf]")
...     c.advise(29.0, "normal:3,0.5@[0,inf]", "normal:5,0.4@[0,inf]", work=19.0)
"""

from __future__ import annotations

import socket
from typing import Any

from .protocol import MAX_LINE_BYTES, encode

__all__ = ["Client", "ServiceError"]


class ServiceError(RuntimeError):
    """An error envelope returned by the server."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"[{kind}] {message}")
        self.kind = kind


class Client:
    """Synchronous client holding one connection to an advisor server.

    Parameters
    ----------
    host, port:
        Server address.
    timeout:
        Socket timeout in seconds for connect and each reply.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._recv_buffer = b""
        self._next_id = 0

    # -- connection ------------------------------------------------------

    def connect(self) -> "Client":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._recv_buffer = b""

    def __enter__(self) -> "Client":
        return self.connect()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- raw request -----------------------------------------------------

    def request(self, op: str, params: dict | None = None) -> dict:
        """Send one request, block for its response, return the result.

        Raises
        ------
        ServiceError
            When the server answers with an error envelope.
        ConnectionError
            When the connection drops before a full reply arrives.
        """
        self.connect()
        assert self._sock is not None
        self._next_id += 1
        request_id = self._next_id
        payload: dict[str, Any] = {"op": op, "id": request_id}
        if params is not None:
            payload["params"] = params
        self._sock.sendall(encode(payload))
        response = self._read_response()
        if not response.get("ok"):
            err = response.get("error") or {}
            raise ServiceError(
                err.get("type", "unknown"), err.get("message", "no message")
            )
        return response.get("result", {})

    def _read_response(self) -> dict:
        import json

        while b"\n" not in self._recv_buffer:
            if len(self._recv_buffer) > MAX_LINE_BYTES:
                raise ConnectionError("response line exceeded the protocol limit")
            chunk = self._sock.recv(65536)  # type: ignore[union-attr]
            if not chunk:
                raise ConnectionError("server closed the connection mid-response")
            self._recv_buffer += chunk
        line, _, self._recv_buffer = self._recv_buffer.partition(b"\n")
        return json.loads(line.decode("utf-8"))

    # -- typed helpers ---------------------------------------------------

    def ping(self) -> bool:
        return bool(self.request("ping").get("pong"))

    def stats(self) -> dict:
        return self.request("stats")

    def shutdown(self) -> dict:
        return self.request("shutdown")

    def policy(self, reservation: float, task_law: str, checkpoint_law: str) -> dict:
        return self.request(
            "policy",
            {
                "reservation": reservation,
                "task_law": task_law,
                "checkpoint_law": checkpoint_law,
            },
        )["policy"]

    def warm(self, reservation: float, task_law: str, checkpoint_law: str) -> dict:
        return self.request(
            "warm",
            {
                "reservation": reservation,
                "task_law": task_law,
                "checkpoint_law": checkpoint_law,
            },
        )["policy"]

    def advise(
        self,
        reservation: float,
        task_law: str,
        checkpoint_law: str,
        work: float,
        time_left: float | None = None,
    ) -> dict:
        params = {
            "reservation": reservation,
            "task_law": task_law,
            "checkpoint_law": checkpoint_law,
            "work": work,
        }
        if time_left is not None:
            params["time_left"] = time_left
        return self.request("advise", params)

    def advise_batch(
        self,
        reservation: float,
        task_law: str,
        checkpoint_law: str,
        work: list[float],
        time_left: list[float] | None = None,
    ) -> dict:
        params: dict[str, Any] = {
            "reservation": reservation,
            "task_law": task_law,
            "checkpoint_law": checkpoint_law,
            "work": list(work),
        }
        if time_left is not None:
            params["time_left"] = list(time_left)
        return self.request("advise_batch", params)
