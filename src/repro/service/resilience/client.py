"""A retrying, breaker-gated client that degrades to local computation.

:class:`ResilientClient` wraps the plain blocking
:class:`repro.service.Client` with the full fault-tolerance stack:

* every call runs under a :class:`Deadline` budget; each attempt's
  socket timeout is clamped to what is left of it;
* transport failures (refused/reset connections, timeouts, desynced or
  garbage replies) and retryable server envelopes (``timeout``,
  ``overloaded``) trigger reconnect + retry with exponential backoff
  and seeded jitter (:class:`RetryPolicy`);
* consecutive failures open a :class:`CircuitBreaker`, after which
  calls fail fast until a cool-down admits a half-open probe;
* when the circuit is open or every retry is exhausted, ``advise`` /
  ``advise_batch`` / ``policy`` / ``warm`` fall back to a local
  :class:`repro.service.Advisor`, so the caller always gets a decision
  — identical to the server's, since both read the same compiled
  threshold. Results carry ``"source": "server"`` or
  ``"source": "local-fallback"``.

All time sources (``clock``, ``sleep``) are injectable so the retry and
breaker behaviour is testable without wall-clock dependence.
"""

from __future__ import annotations

import time
from types import TracebackType
from typing import TYPE_CHECKING, Any, Callable

from ...obs.tracer import NULL_SPAN, Tracer
from ..client import Client, ServiceError
from ..metrics import ServiceMetrics
from .breaker import CircuitBreaker, CircuitOpenError
from .retry import Deadline, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover
    from ..advisor import Advisor

__all__ = ["ResilientClient"]

#: Server error-envelope kinds worth retrying: the request may succeed
#: on a calmer server. Anything else (invalid-params, unknown-op, ...)
#: is the caller's bug and is surfaced immediately.
RETRYABLE_ENVELOPES = frozenset({"timeout", "overloaded"})


class ResilientClient:
    """Fault-tolerant facade over one advisor-server connection.

    Parameters
    ----------
    host, port:
        Server address.
    timeout:
        Per-attempt socket timeout (connect and reply), clamped to the
        remaining per-call deadline.
    deadline:
        Total budget in seconds for one logical call, spanning all
        retries and backoff sleeps; ``None`` disables the budget.
    retry:
        Backoff schedule; defaults to ``RetryPolicy()`` (4 attempts).
    breaker:
        Circuit breaker; a default one (5 failures, 30 s cool-down) is
        created when omitted. Pass an explicit instance to share a
        breaker across clients or to inject a test clock.
    fallback:
        Local advisor used when the server cannot answer. ``None``
        builds a private :class:`Advisor` lazily on first use; pass
        ``False`` to disable degradation (failures then raise).
    metrics:
        Sink for ``retry.*``, ``breaker.*`` and ``fallback.*`` counters.
    tracer:
        Optional span tracer shared with the inner :class:`Client`.
        Each logical call opens an ``rpc.<op>`` span tagged with its
        outcome (``source: server`` or ``source: local-fallback``);
        per-attempt ``client.<op>`` spans nest underneath, so a trace
        shows every retry and the degradation hop.
    clock, sleep:
        Injectable time sources for deterministic tests.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float = 5.0,
        deadline: float | None = 15.0,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        fallback: Any = None,
        metrics: ServiceMetrics | None = None,
        tracer: Tracer | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.tracer = tracer
        self.client = Client(host, port, timeout=timeout, tracer=tracer)
        self.timeout = timeout
        self.deadline = deadline
        self.retry = retry if retry is not None else RetryPolicy()
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        if breaker is None:
            breaker = CircuitBreaker(clock=clock)
        if breaker._on_transition is None:
            breaker._on_transition = self._on_breaker_transition
        self.breaker = breaker
        self._fallback_enabled = fallback is not False
        self._fallback: Advisor | None = fallback if self._fallback_enabled else None
        self._clock = clock
        self._sleep = sleep

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        self.client.close()

    def __enter__(self) -> "ResilientClient":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    def _on_breaker_transition(self, old: str, new: str) -> None:
        self.metrics.incr(f"breaker.{new}")

    @property
    def fallback(self) -> "Advisor | None":
        """The local advisor used for degraded answers (lazily built)."""
        if not self._fallback_enabled:
            return None
        if self._fallback is None:
            from ..advisor import Advisor

            self._fallback = Advisor(metrics=self.metrics, tracer=self.tracer)
        return self._fallback

    def _require_fallback(self) -> "Advisor":
        """The fallback advisor, or fail loudly when degradation is off."""
        fallback = self.fallback
        if fallback is None:
            raise RuntimeError("local fallback is disabled for this client")
        return fallback

    # -- retry engine ----------------------------------------------------

    def request(self, op: str, params: dict[str, Any] | None = None) -> dict[str, Any]:
        """One logical request with retries, breaker gating and deadline.

        Raises
        ------
        CircuitOpenError
            When the breaker rejects the call outright.
        ServiceError
            When the server answered with a non-retryable envelope, or
            a retryable one survived every attempt.
        ConnectionError, TimeoutError, OSError
            When the transport kept failing until the budget ran out.
        """
        deadline = Deadline(self.deadline, self._clock)
        delays = self.retry.delays()
        last_exc: Exception | None = None
        for attempt in range(self.retry.max_attempts):
            if not self.breaker.allow():
                self.metrics.incr("breaker.rejections")
                raise CircuitOpenError(self.breaker.retry_in())
            if attempt:
                self.metrics.incr("retry.attempts")
            try:
                self.client.set_timeout(deadline.clamp(self.timeout))
                result = self.client.request(op, params)
            except ServiceError as exc:
                if exc.kind not in RETRYABLE_ENVELOPES:
                    # the server is alive and answered: not a breaker failure
                    self.breaker.record_success()
                    raise
                self.breaker.record_failure()
                self.metrics.incr(f"retry.envelope.{exc.kind}")
                self.client.close()
                last_exc = exc
            except (TimeoutError, OSError) as exc:
                self.breaker.record_failure()
                self.metrics.incr("retry.transport_errors")
                self.client.close()
                last_exc = exc
            else:
                self.breaker.record_success()
                return result
            delay = next(delays, None)
            if delay is None or deadline.expired():
                break
            sleep_for = min(delay, max(deadline.remaining(), 0.0))
            if sleep_for > 0.0:
                self._sleep(sleep_for)
        self.metrics.incr("retry.giveups")
        assert last_exc is not None
        raise last_exc

    # -- degradation -----------------------------------------------------

    def _request_or_fallback(
        self, op: str, params: dict[str, Any], local: Callable[[], dict[str, Any]]
    ) -> dict[str, Any]:
        span_cm = (
            self.tracer.span(f"rpc.{op}")
            if self.tracer is not None and self.tracer.enabled
            else NULL_SPAN
        )
        with span_cm as span:
            try:
                result = self.request(op, params)
            except (CircuitOpenError, TimeoutError, OSError, ServiceError) as exc:
                if isinstance(exc, ServiceError) and exc.kind not in RETRYABLE_ENVELOPES:
                    raise  # the caller's bug, not an availability problem
                if self.fallback is None:
                    raise
                self.metrics.incr(f"fallback.{op}")
                span.set_tag("source", "local-fallback")
                span.set_tag("fallback_cause", type(exc).__name__)
                result = local()
                result["source"] = "local-fallback"
                return result
            self.metrics.incr("requests.server")
            span.set_tag("source", "server")
            result["source"] = "server"
            return result

    # -- typed helpers ---------------------------------------------------

    def ping(self) -> bool:
        """Server liveness; ``False`` instead of raising when unreachable."""
        try:
            return bool(self.request("ping").get("pong"))
        except (CircuitOpenError, TimeoutError, OSError, ServiceError):
            return False

    def health(self) -> dict[str, Any]:
        """The server's ``health`` report, or a degraded local stub."""
        return self._request_or_fallback(
            "health",
            {},
            lambda: {"status": "unreachable", "breaker": self.breaker.state},
        )

    def stats(self) -> dict[str, Any]:
        return self.request("stats")

    def policy(
        self, reservation: float, task_law: str, checkpoint_law: str
    ) -> dict[str, Any]:
        params = self._policy_params(reservation, task_law, checkpoint_law)
        return self._request_or_fallback(
            "policy",
            params,
            lambda: {
                "policy": self._require_fallback().policy(
                    reservation, task_law, checkpoint_law
                ).to_dict()
            },
        )

    def warm(
        self, reservation: float, task_law: str, checkpoint_law: str
    ) -> dict[str, Any]:
        params = self._policy_params(reservation, task_law, checkpoint_law)
        return self._request_or_fallback(
            "warm",
            params,
            lambda: {
                "policy": self._require_fallback().warm(
                    reservation, task_law, checkpoint_law
                ).to_dict()
            },
        )

    def advise(
        self,
        reservation: float,
        task_law: str,
        checkpoint_law: str,
        work: float,
        time_left: float | None = None,
    ) -> dict[str, Any]:
        params = self._policy_params(reservation, task_law, checkpoint_law)
        params["work"] = work
        if time_left is not None:
            params["time_left"] = time_left
        return self._request_or_fallback(
            "advise",
            params,
            lambda: self._require_fallback().advise(
                reservation, task_law, checkpoint_law, work, time_left
            ).to_dict(),
        )

    def advise_batch(
        self,
        reservation: float,
        task_law: str,
        checkpoint_law: str,
        work: list[float],
        time_left: list[float] | None = None,
    ) -> dict[str, Any]:
        params = self._policy_params(reservation, task_law, checkpoint_law)
        params["work"] = list(work)
        if time_left is not None:
            params["time_left"] = list(time_left)

        def local() -> dict[str, Any]:
            advices = self._require_fallback().advise_batch(
                reservation, task_law, checkpoint_law, work, time_left
            )
            return {
                "count": len(advices),
                "decisions": [a.checkpoint for a in advices],
                "advice": [a.to_dict() for a in advices],
            }

        return self._request_or_fallback("advise_batch", params, local)

    @staticmethod
    def _policy_params(
        reservation: float, task_law: str, checkpoint_law: str
    ) -> dict[str, Any]:
        return {
            "reservation": reservation,
            "task_law": task_law,
            "checkpoint_law": checkpoint_law,
        }
