"""Fault tolerance for the advisor service's client side.

The paper's premise is that failures are the norm: a reservation ends,
a node dies, a link flaps. This package applies the same stance to the
serving layer itself, so a scheduler embedding the client keeps getting
checkpoint decisions even while the advisor service is slow, flaky, or
down:

* :class:`RetryPolicy` — exponential backoff with deterministic
  (seeded) jitter and a per-call :class:`Deadline` budget
  (:mod:`repro.service.resilience.retry`);
* :class:`CircuitBreaker` — closed/open/half-open breaker that stops
  hammering a dead server and probes it again after a cool-down
  (:mod:`repro.service.resilience.breaker`);
* :class:`ResilientClient` — wraps :class:`repro.service.Client` with
  retries, the breaker, request/response id matching with automatic
  reconnect-and-resync, and graceful degradation to a local
  :class:`repro.service.Advisor` so ``advise`` / ``advise_batch``
  always return an answer (:mod:`repro.service.resilience.client`).

Every answer is tagged with its provenance: ``"source": "server"`` when
the service replied, ``"source": "local-fallback"`` when the decision
was computed in-process because the service was unreachable.
"""

from .breaker import CircuitBreaker, CircuitOpenError
from .client import ResilientClient
from .retry import Deadline, RetryPolicy

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "ResilientClient",
    "RetryPolicy",
]
