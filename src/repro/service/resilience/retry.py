"""Backoff schedules and per-call deadline budgets.

Both pieces are deliberately clock-injectable: tests drive them with a
fake monotonic clock and a no-op sleep, so retry behaviour is asserted
deterministically — no wall-clock dependence, per the fault-injection
ground rules.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator

__all__ = ["Deadline", "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic, seeded jitter.

    ``max_attempts`` counts the first try: a policy with
    ``max_attempts=4`` yields three backoff delays. Each delay is
    ``min(base_delay * multiplier**k, max_delay)`` scaled by a jitter
    factor drawn uniformly from ``[1 - jitter, 1 + jitter]`` by a
    ``random.Random(seed)`` private to each :meth:`delays` call — the
    same seed always produces the same schedule.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0.0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must lie in [0, 1), got {self.jitter}")

    def delays(self) -> Iterator[float]:
        """Yield the ``max_attempts - 1`` sleep durations, in order."""
        rng = random.Random(self.seed)
        delay = self.base_delay
        for _ in range(self.max_attempts - 1):
            scale = 1.0 + rng.uniform(-self.jitter, self.jitter) if self.jitter else 1.0
            yield min(delay, self.max_delay) * scale
            delay = min(delay * self.multiplier, self.max_delay)


class Deadline:
    """A monotonic time budget shared by every attempt of one call.

    Parameters
    ----------
    budget:
        Seconds allowed for the whole call (connect + send + receive +
        backoff sleeps across all retries); ``None`` means unlimited.
    clock:
        Monotonic clock, injectable for deterministic tests.
    """

    def __init__(
        self, budget: float | None, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if budget is not None and budget <= 0.0:
            raise ValueError(f"deadline budget must be positive, got {budget}")
        self.budget = budget
        self._clock = clock
        self._started = clock()

    def remaining(self) -> float:
        """Seconds left in the budget (``inf`` when unlimited)."""
        if self.budget is None:
            return math.inf
        return self.budget - (self._clock() - self._started)

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def clamp(self, timeout: float) -> float:
        """``timeout`` bounded by what is left of the budget.

        Raises
        ------
        TimeoutError
            When the budget is already exhausted.
        """
        left = self.remaining()
        if left <= 0.0:
            raise TimeoutError(
                f"deadline budget of {self.budget:g}s exhausted before the attempt"
            )
        return min(timeout, left)
