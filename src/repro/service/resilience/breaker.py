"""A closed/open/half-open circuit breaker.

The breaker models the restart-vs-persist tradeoff of the related
restart literature at the RPC layer: after ``failure_threshold``
consecutive failures the circuit *opens* and calls fail fast (no
connect attempt, no timeout burned); after ``cooldown`` seconds it goes
*half-open* and admits exactly one probe. A successful probe closes the
circuit, a failed one re-opens it and restarts the cool-down.

Thread-safe: the blocking client may be shared across scheduler
threads, so all state transitions happen under one lock. The clock is
injectable so tests can step time deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["CircuitBreaker", "CircuitOpenError", "CLOSED", "HALF_OPEN", "OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitOpenError(ConnectionError):
    """Raised (or handled by fallback) when the breaker rejects a call."""

    def __init__(self, retry_in: float) -> None:
        super().__init__(
            f"circuit breaker is open; next probe allowed in {max(retry_in, 0.0):.3g}s"
        )
        self.retry_in = retry_in


class CircuitBreaker:
    """Track consecutive failures and gate calls accordingly.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that open the circuit.
    cooldown:
        Seconds the circuit stays open before admitting a half-open probe.
    clock:
        Monotonic clock, injectable for deterministic tests.
    on_transition:
        Optional ``callback(old_state, new_state)`` invoked (under the
        lock) on every state change — the resilient client wires this
        to its metrics.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown: float = 30.0,
        *,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str, str], None] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown <= 0.0:
            raise ValueError(f"cooldown must be positive, got {cooldown}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False

    # -- state -----------------------------------------------------------

    def _transition(self, new_state: str) -> None:
        old, self._state = self._state, new_state
        if old != new_state and self._on_transition is not None:
            self._on_transition(old, new_state)

    def _refresh(self) -> None:
        """Apply the lazy open -> half-open transition (lock held)."""
        if self._state == OPEN and self._clock() - self._opened_at >= self.cooldown:
            self._transition(HALF_OPEN)
            self._probe_inflight = False

    @property
    def state(self) -> str:
        with self._lock:
            self._refresh()
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._consecutive_failures

    def retry_in(self) -> float:
        """Seconds until the next probe is admitted (0 when not open)."""
        with self._lock:
            self._refresh()
            if self._state != OPEN:
                return 0.0
            return self.cooldown - (self._clock() - self._opened_at)

    # -- gating ----------------------------------------------------------

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        In the half-open state only one probe is admitted at a time;
        its :meth:`record_success` / :meth:`record_failure` decides the
        next state.
        """
        with self._lock:
            self._refresh()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probe_inflight:
                self._probe_inflight = True
                return True
            return False

    def check(self) -> None:
        """:meth:`allow` that raises :class:`CircuitOpenError` instead."""
        if not self.allow():
            raise CircuitOpenError(self.retry_in())

    # -- outcomes --------------------------------------------------------

    def record_success(self) -> None:
        with self._lock:
            self._refresh()
            self._consecutive_failures = 0
            self._probe_inflight = False
            if self._state != CLOSED:
                self._transition(CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._refresh()
            self._consecutive_failures += 1
            self._probe_inflight = False
            if self._state == HALF_OPEN or (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._opened_at = self._clock()
                self._transition(OPEN)

    def reset(self) -> None:
        """Force the breaker back to pristine closed state."""
        with self._lock:
            self._consecutive_failures = 0
            self._probe_inflight = False
            self._transition(CLOSED)
