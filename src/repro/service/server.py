"""Asyncio JSON-lines TCP server wrapping an :class:`Advisor`.

The event loop only shuttles lines; the numerical work (policy
compilation on cache misses, quadrature, root-finding) runs in the
default thread-pool executor so one cold ``warm`` request cannot stall
other connections. Each request gets a deadline (``request_timeout``);
on expiry the client receives a ``timeout`` error envelope and the
connection stays usable.

The server defends itself against a hostile or merely overloaded world:

* **connection cap** — beyond ``max_connections`` concurrent peers, new
  connections receive one ``overloaded`` error envelope (``id: null``)
  and are closed immediately; existing connections are unaffected;
* **in-flight bound** — at most ``max_inflight`` requests execute at
  once across all connections; excess requests get an ``overloaded``
  envelope instead of queueing without bound;
* **idle timeout** — a connection that sends nothing for
  ``idle_timeout`` seconds is dropped (slow-loris defense);
* **health op** — distinct from ``ping``: reports load, shedding and
  cache-degradation state so clients and monitors can see trouble
  coming before requests start failing.

Shutdown is graceful: the listener closes first, in-flight handlers get
a grace period to finish writing, then the loop exits. The ``shutdown``
op (and SIGINT/SIGTERM under :meth:`AdvisorServer.run`) triggers it.
"""

from __future__ import annotations

import asyncio
import contextlib
import contextvars
from typing import Any, Callable, TypeVar

from ..obs.drift import DurationRecorder
from ..obs.metrics import MetricsRegistry, global_registry
from ..obs.tracer import Tracer
from .advisor import Advisor
from .cache import PolicyCache
from .metrics import ServiceMetrics
from .protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_line,
    encode,
    error_response,
    ok_response,
)

__all__ = ["AdvisorServer"]

_T = TypeVar("_T")


class AdvisorServer:
    """Serve checkpoint advice over loopback (or any TCP interface).

    Parameters
    ----------
    advisor:
        The advisor to expose; one with a fresh private cache by default.
    host, port:
        Bind address. ``port=0`` picks a free port (see :attr:`port`
        after :meth:`start` — handy for tests).
    request_timeout:
        Per-request deadline in seconds.
    idle_timeout:
        Seconds a connection may stay silent before being dropped;
        ``None`` disables the idle check.
    max_connections:
        Concurrent-connection cap; excess peers are shed with an
        ``overloaded`` envelope.
    max_inflight:
        Bound on concurrently executing requests across connections.
    metrics:
        Metrics sink; defaults to the advisor's, else a fresh one.
    tracer:
        Span tracer; a disabled one by default, so tracing costs one
        attribute check per request unless explicitly switched on.
        Requests carrying a ``trace`` context get a ``server.<op>``
        child span and their ``trace_id`` echoed on the response even
        when the server-side tracer is disabled.
    recorder:
        Checkpoint-duration telemetry sink for the ``observe`` op;
        a default :class:`repro.obs.DurationRecorder` when omitted.
    drift_check:
        When ``True``, the ``health`` op reports drifted checkpoint
        laws and flips ``degraded`` if any key's observed durations
        KS-diverge from the assumed law (``repro serve --drift-check``).
    """

    def __init__(
        self,
        advisor: Advisor | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        request_timeout: float = 30.0,
        idle_timeout: float | None = 300.0,
        max_connections: int = 128,
        max_inflight: int = 32,
        metrics: ServiceMetrics | None = None,
        tracer: Tracer | None = None,
        recorder: DurationRecorder | None = None,
        drift_check: bool = False,
    ) -> None:
        if max_connections < 1:
            raise ValueError(f"max_connections must be >= 1, got {max_connections}")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if metrics is None:
            metrics = advisor.metrics if advisor is not None else None
        if metrics is None:
            metrics = ServiceMetrics()
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        if advisor is None:
            advisor = Advisor(
                PolicyCache(metrics=metrics, tracer=self.tracer),
                metrics=metrics,
                tracer=self.tracer,
            )
        elif self.tracer.enabled and advisor.tracer is None:
            # share the server tracer so advisor/cache spans join traces
            advisor.tracer = self.tracer
            if advisor.cache.tracer is None:
                advisor.cache.tracer = self.tracer
        self.advisor = advisor
        self.metrics = metrics
        self.recorder = recorder if recorder is not None else DurationRecorder()
        self.drift_check = drift_check
        self.host = host
        self.port = port
        self.request_timeout = request_timeout
        self.idle_timeout = idle_timeout
        self.max_connections = max_connections
        self.max_inflight = max_inflight
        self._active_connections = 0
        self._inflight = 0
        self._shed_connections = 0
        self._shed_requests = 0
        self._server: asyncio.AbstractServer | None = None
        self._stopping: asyncio.Event | None = None
        self._handlers: set[asyncio.Task[None]] = set()

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections (idempotent)."""
        if self._server is not None:
            return
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_stopped(self) -> None:
        """Start (if needed) and block until a shutdown is requested."""
        await self.start()
        assert self._stopping is not None
        await self._stopping.wait()
        await self.stop()

    async def stop(self, grace: float = 5.0) -> None:
        """Stop accepting, drain in-flight handlers, release the port."""
        if self._server is None:
            return
        server, self._server = self._server, None
        if self._stopping is not None:
            self._stopping.set()
        server.close()
        await server.wait_closed()
        if self._handlers:
            done, pending = await asyncio.wait(self._handlers, timeout=grace)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        self._handlers.clear()

    def request_shutdown(self) -> None:
        """Ask the serve loop to exit (safe to call from a handler)."""
        if self._stopping is not None:
            self._stopping.set()

    def run(self) -> None:
        """Blocking convenience wrapper: serve until SIGINT/shutdown op."""
        try:
            asyncio.run(self.serve_until_stopped())
        except KeyboardInterrupt:
            pass

    # -- connection handling ---------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        if self._active_connections >= self.max_connections:
            await self._shed_connection(writer)
            return
        self._active_connections += 1
        self.metrics.incr("connections.opened")
        try:
            while True:
                try:
                    line = await self._read_line(reader)
                except asyncio.TimeoutError:
                    self.metrics.incr("connections.idle_closed")
                    break
                except (ConnectionResetError, ValueError):
                    # reset, or a line beyond MAX_LINE_BYTES: drop the peer
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._handle_line(line)
                writer.write(encode(response))
                try:
                    await writer.drain()
                except ConnectionResetError:
                    break
                if self._stopping is not None and self._stopping.is_set():
                    break
        finally:
            self._active_connections -= 1
            self.metrics.incr("connections.closed")
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _read_line(self, reader: asyncio.StreamReader) -> bytes:
        if self.idle_timeout is None:
            return await reader.readline()
        return await asyncio.wait_for(reader.readline(), timeout=self.idle_timeout)

    async def _shed_connection(self, writer: asyncio.StreamWriter) -> None:
        """Refuse a connection beyond the cap with one error envelope."""
        self._shed_connections += 1
        self.metrics.incr("connections.shed")
        envelope = error_response(
            None,
            "overloaded",
            f"connection limit ({self.max_connections}) reached; retry later",
        )
        with contextlib.suppress(Exception):
            writer.write(encode(envelope))
            await writer.drain()
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()

    async def _handle_line(self, line: bytes) -> dict[str, Any]:
        try:
            request = decode_line(line)
        except ProtocolError as exc:
            self.metrics.incr(f"errors.{exc.kind}")
            self.metrics.incr("requests.malformed")
            return error_response(exc.request_id, exc.kind, str(exc))
        op, request_id, params = request["op"], request["id"], request["params"]
        trace = request.get("trace")
        trace_id = trace["trace_id"] if trace else None
        if self._inflight >= self.max_inflight:
            self._shed_requests += 1
            self.metrics.incr("errors.overloaded")
            return error_response(
                request_id,
                "overloaded",
                f"in-flight request limit ({self.max_inflight}) reached; retry later",
                trace_id,
            )
        self.metrics.incr(f"requests.{op}")
        self._inflight += 1
        try:
            with self.tracer.span(
                f"server.{op}",
                trace_id=trace_id,
                parent_id=trace["span_id"] if trace else None,
            ) as span:
                response = await self._timed_dispatch(op, request_id, params, trace_id)
                if not response.get("ok"):
                    span.status = "error"
                    span.set_tag("error_kind", response["error"]["type"])
        finally:
            self._inflight -= 1
        return response

    async def _timed_dispatch(
        self, op: str, request_id: Any, params: dict[str, Any], trace_id: str | None
    ) -> dict[str, Any]:
        with self.metrics.time(op):
            try:
                result = await asyncio.wait_for(
                    self._dispatch(op, params), timeout=self.request_timeout
                )
            except asyncio.TimeoutError:
                self.metrics.incr("errors.timeout")
                return error_response(
                    request_id,
                    "timeout",
                    f"op {op!r} exceeded the {self.request_timeout:g}s deadline",
                    trace_id,
                )
            except (ValueError, TypeError, KeyError, NotImplementedError) as exc:
                self.metrics.incr("errors.invalid-params")
                return error_response(request_id, "invalid-params", str(exc), trace_id)
            except Exception as exc:  # unexpected: report, keep serving
                self.metrics.incr("errors.internal")
                return error_response(
                    request_id, "internal", f"{type(exc).__name__}: {exc}", trace_id
                )
        return ok_response(request_id, result, trace_id)

    # -- op dispatch -----------------------------------------------------

    def health_snapshot(self) -> dict[str, object]:
        """Load, shedding and degradation state (the ``health`` op body)."""
        stopping = self._stopping is not None and self._stopping.is_set()
        cache_stats = self.advisor.cache.stats()
        drift = self.recorder.snapshot()
        drift["enabled"] = self.drift_check
        drift_degraded = self.drift_check and bool(drift["drifted"])
        return {
            "status": "stopping" if stopping else "ok",
            "connections": {
                "active": self._active_connections,
                "max": self.max_connections,
                "shed_total": self._shed_connections,
            },
            "inflight": {
                "active": self._inflight,
                "max": self.max_inflight,
                "shed_total": self._shed_requests,
            },
            "cache": cache_stats,
            "drift": drift,
            "degraded": bool(cache_stats.get("quarantined", 0)) or drift_degraded,
        }

    def prometheus_exposition(self) -> str:
        """Unified Prometheus text exposition: service + process metrics.

        The service registry is merged with the process-wide default
        registry (simulation engine tallies, FFT-memo counters) so one
        scrape sees every subsystem.
        """
        combined = MetricsRegistry()
        combined._started = self.metrics._started
        combined.absorb(self.metrics)
        combined.absorb(global_registry())
        return combined.render_prometheus()

    async def _dispatch(self, op: str, params: dict[str, Any]) -> dict[str, Any]:
        if op == "ping":
            return {"pong": True}
        if op == "health":
            return await self._run_blocking(self.health_snapshot)
        if op == "stats":
            fmt = params.get("format", "json")
            if fmt == "prometheus":
                return {
                    "format": "prometheus",
                    "exposition": self.prometheus_exposition(),
                }
            if fmt != "json":
                raise ValueError(
                    f"unknown stats format {fmt!r}; available: json, prometheus"
                )
            return {
                "metrics": self.metrics.snapshot(),
                "cache": self.advisor.cache.stats(),
                "tracing": self.tracer.stats(),
            }
        if op == "observe":
            ckpt = params.get("checkpoint_law")
            if not isinstance(ckpt, str):
                raise ValueError(
                    "missing required parameter 'checkpoint_law' (law-spec string)"
                )
            samples = params.get("samples")
            if not isinstance(samples, list) or not samples:
                raise ValueError("'samples' must be a non-empty list of numbers")
            for value in samples:
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise ValueError(
                        f"'samples' must contain numbers only, got {value!r}"
                    )
            return await self._run_blocking(self._observe, ckpt, samples)
        if op == "shutdown":
            self.request_shutdown()
            return {"stopping": True}
        if op == "policy" or op == "warm":
            reservation, task, ckpt = self._policy_params(params)
            policy = await self._run_blocking(
                self.advisor.policy, reservation, task, ckpt
            )
            return {"policy": policy.to_dict()}
        if op == "advise":
            reservation, task, ckpt = self._policy_params(params)
            work = self._number(params, "work")
            time_left = self._number(params, "time_left", required=False)
            advice = await self._run_blocking(
                self.advisor.advise, reservation, task, ckpt, work, time_left
            )
            return advice.to_dict()
        if op == "advise_batch":
            reservation, task, ckpt = self._policy_params(params)
            work = params.get("work")
            if not isinstance(work, list) or not work:
                raise ValueError("'work' must be a non-empty list of numbers")
            time_left = params.get("time_left")
            if time_left is not None and not isinstance(time_left, list):
                raise ValueError("'time_left' must be a list when provided")
            if time_left is not None and len(time_left) != len(work):
                raise ValueError("'time_left' must be as long as 'work'")
            advices = await self._run_blocking(
                self.advisor.advise_batch, reservation, task, ckpt, work, time_left
            )
            return {
                "count": len(advices),
                "decisions": [a.checkpoint for a in advices],
                "advice": [a.to_dict() for a in advices],
            }
        raise ValueError(f"unhandled op {op!r}")  # unreachable: decode_line vets ops

    def _observe(self, checkpoint_law: str, samples: list[float]) -> dict[str, object]:
        """Record reported checkpoint durations and check for drift.

        The key is the *canonical* law spec so observations reported as
        ``"beta:2,5"`` and ``"beta:2,5,0,1"`` accumulate together —
        and match the spec inside the policy-cache key.
        """
        from ..cli import parse_law

        assumed = parse_law(checkpoint_law)
        key = assumed.spec()
        with self.tracer.span("recorder.observe", tags={"key": key}):
            recorded = self.recorder.record_many(key, samples)
            self.metrics.incr("durations.recorded", recorded)
            report = self.recorder.check_drift(key, assumed)
        if report.drifted:
            self.metrics.incr("drift.signals")
        return {
            "key": key,
            "recorded": recorded,
            "window_count": self.recorder.count(key),
            "drift": report.to_dict(),
        }

    @staticmethod
    async def _run_blocking(func: Callable[..., _T], *args: Any) -> _T:
        # copy_context(): executor threads inherit the ambient span, so
        # advisor / cache-compile spans nest under the server span.
        ctx = contextvars.copy_context()
        return await asyncio.get_running_loop().run_in_executor(
            None, lambda: ctx.run(func, *args)
        )

    @staticmethod
    def _number(params: dict[str, Any], name: str, required: bool = True) -> float | None:
        value = params.get(name)
        if value is None:
            if required:
                raise ValueError(f"missing required parameter {name!r}")
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"parameter {name!r} must be a number, got {value!r}")
        return float(value)

    @classmethod
    def _policy_params(cls, params: dict[str, Any]) -> tuple[float, str, str]:
        reservation = cls._number(params, "reservation")
        task = params.get("task_law")
        ckpt = params.get("checkpoint_law")
        if not isinstance(task, str):
            raise ValueError("missing required parameter 'task_law' (law-spec string)")
        if not isinstance(ckpt, str):
            raise ValueError(
                "missing required parameter 'checkpoint_law' (law-spec string)"
            )
        assert reservation is not None
        return reservation, task, ckpt
