"""Observability for the checkpoint-advisor service.

:class:`ServiceMetrics` is the service-facing facade over the unified
:class:`repro.obs.MetricsRegistry`: monotonically increasing counters,
gauges and log-scale histograms guarded by one lock, so the blocking
CLI paths, the asyncio server's executor threads and the test suite can
all share an instance. Per-endpoint request latencies live in a
``latency.<endpoint>`` histogram namespace and surface under the
``latency`` key of :meth:`ServiceMetrics.snapshot` — the ``stats``
endpoint returns that snapshot verbatim (strict JSON: empty-histogram
statistics are ``null``, quantiles are capped at the observed maximum,
so no ``NaN``/``Infinity`` tokens ever reach the wire), and
``repro serve --metrics-dump`` renders one on shutdown. The same data
renders as Prometheus text exposition via
:meth:`repro.obs.MetricsRegistry.render_prometheus` (the ``stats`` op
with ``{"format": "prometheus"}``, or ``repro metrics``).
"""

from __future__ import annotations

from typing import cast

from ..obs.metrics import Histogram, MetricsRegistry

__all__ = ["LatencyHistogram", "ServiceMetrics"]

#: Backwards-compatible alias: the service's latency histogram is the
#: unified observability histogram.
LatencyHistogram = Histogram

_LATENCY_PREFIX = "latency."


class ServiceMetrics(MetricsRegistry):
    """Counters + per-endpoint latency histograms for the advisor service.

    Counter names are free-form dotted strings; the service uses
    ``requests.<op>``, ``errors.<kind>``, ``cache.hits``,
    ``cache.misses``, ``cache.disk_hits`` and ``cache.evictions``.
    Request latencies recorded through :meth:`observe_latency` /
    :meth:`time` land in the ``latency.<endpoint>`` histogram namespace.
    """

    # -- recording -------------------------------------------------------

    def observe_latency(self, endpoint: str, seconds: float) -> None:
        """Record one request latency for ``endpoint``."""
        self.observe(_LATENCY_PREFIX + endpoint, seconds)

    def time(self, endpoint: str) -> "MetricsRegistry._Timer":
        """Context manager recording the block's wall time for ``endpoint``."""
        return super().time(_LATENCY_PREFIX + endpoint)

    # -- reading ---------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """Strict-JSON view of every counter, gauge and histogram.

        ``latency.<endpoint>`` histograms are split out under the
        ``latency`` key (bare endpoint names) for the ``stats`` op;
        everything else stays under ``histograms``.
        """
        snap = super().snapshot()
        latency: dict[str, object] = {}
        other: dict[str, object] = {}
        histograms = snap.pop("histograms")
        if isinstance(histograms, dict):
            for name, hist in histograms.items():
                if name.startswith(_LATENCY_PREFIX):
                    latency[name[len(_LATENCY_PREFIX):]] = hist
                else:
                    other[name] = hist
        snap["latency"] = latency
        snap["histograms"] = other
        return snap

    def render(self) -> str:
        """Human-readable dump (the ``--metrics-dump`` format)."""
        snap = self.snapshot()
        counters = cast("dict[str, int]", snap["counters"])
        latency = cast("dict[str, dict[str, float]]", snap["latency"])
        lines = [f"uptime: {snap['uptime_seconds']:.1f}s", "counters:"]
        if not counters:
            lines.append("  (none)")
        for name, value in counters.items():
            lines.append(f"  {name:<24} {value}")
        lines.append("latency:")
        if not latency:
            lines.append("  (none)")
        for name, hist in latency.items():
            lines.append(
                f"  {name:<16} n={hist['count']:<7} "
                f"mean={hist['mean_seconds'] * 1e3:.3f}ms "
                f"p50<={hist['p50_seconds'] * 1e3:.3f}ms "
                f"p99<={hist['p99_seconds'] * 1e3:.3f}ms "
                f"max={hist['max_seconds'] * 1e3:.3f}ms"
            )
        return "\n".join(lines)
