"""Observability for the checkpoint-advisor service.

A deliberately dependency-free metrics core: monotonically increasing
counters plus log-scale latency histograms, guarded by one lock so the
blocking CLI paths, the asyncio server's executor threads and the test
suite can all share an instance. Snapshots are plain JSON-serializable
dicts — the ``stats`` endpoint returns one verbatim, and
``repro serve --metrics-dump`` renders one on shutdown.
"""

from __future__ import annotations

import math
import threading
import time
from collections import defaultdict

__all__ = ["LatencyHistogram", "ServiceMetrics"]

#: Histogram bucket upper bounds in seconds (log-spaced, ~Prometheus
#: style): 10 us .. ~100 s, plus a +inf overflow bucket.
_DEFAULT_BUCKETS = tuple(10.0 ** (e / 2.0) for e in range(-10, 5)) + (math.inf,)


class LatencyHistogram:
    """Fixed-bucket latency histogram with sum/count/min/max.

    Not thread-safe on its own; :class:`ServiceMetrics` serializes all
    access under its lock.
    """

    def __init__(self, buckets: tuple[float, ...] = _DEFAULT_BUCKETS) -> None:
        if list(buckets) != sorted(buckets) or buckets[-1] != math.inf:
            raise ValueError("buckets must be sorted and end with +inf")
        self.buckets = buckets
        self.counts = [0] * len(buckets)
        self.total = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        seconds = max(float(seconds), 0.0)
        for i, ub in enumerate(self.buckets):
            if seconds <= ub:
                self.counts[i] += 1
                break
        self.total += 1
        self.sum += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (upper bound of the hit bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile level must lie in [0, 1], got {q}")
        if self.total == 0:
            return math.nan
        rank = q * self.total
        seen = 0
        for i, ub in enumerate(self.buckets):
            seen += self.counts[i]
            if seen >= rank:
                return ub
        return self.buckets[-1]

    def snapshot(self) -> dict:
        return {
            "count": self.total,
            "sum_seconds": self.sum,
            "mean_seconds": self.sum / self.total if self.total else math.nan,
            "min_seconds": self.min if self.total else math.nan,
            "max_seconds": self.max,
            "p50_seconds": self.quantile(0.5),
            "p99_seconds": self.quantile(0.99),
            "buckets": {
                ("inf" if math.isinf(ub) else f"{ub:.6g}"): c
                for ub, c in zip(self.buckets, self.counts)
                if c
            },
        }


class ServiceMetrics:
    """Counters + per-endpoint latency histograms for the advisor service.

    Counter names are free-form dotted strings; the service uses
    ``requests.<op>``, ``errors.<kind>``, ``cache.hits``,
    ``cache.misses``, ``cache.disk_hits`` and ``cache.evictions``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: defaultdict[str, int] = defaultdict(int)
        self._latency: dict[str, LatencyHistogram] = {}
        self._started = time.time()

    # -- recording -------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        with self._lock:
            self._counters[name] += amount

    def observe_latency(self, endpoint: str, seconds: float) -> None:
        """Record one request latency for ``endpoint``."""
        with self._lock:
            hist = self._latency.get(endpoint)
            if hist is None:
                hist = self._latency[endpoint] = LatencyHistogram()
            hist.observe(seconds)

    class _Timer:
        def __init__(self, metrics: "ServiceMetrics", endpoint: str) -> None:
            self._metrics = metrics
            self._endpoint = endpoint

        def __enter__(self) -> "ServiceMetrics._Timer":
            self._t0 = time.perf_counter()
            return self

        def __exit__(self, exc_type, exc, tb) -> None:
            self._metrics.observe_latency(
                self._endpoint, time.perf_counter() - self._t0
            )

    def time(self, endpoint: str) -> "ServiceMetrics._Timer":
        """Context manager recording the block's wall time for ``endpoint``."""
        return self._Timer(self, endpoint)

    # -- reading ---------------------------------------------------------

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """JSON-serializable view of every counter and histogram."""
        with self._lock:
            return {
                "uptime_seconds": time.time() - self._started,
                "counters": dict(sorted(self._counters.items())),
                "latency": {
                    name: hist.snapshot()
                    for name, hist in sorted(self._latency.items())
                },
            }

    def render(self) -> str:
        """Human-readable dump (the ``--metrics-dump`` format)."""
        snap = self.snapshot()
        lines = [f"uptime: {snap['uptime_seconds']:.1f}s", "counters:"]
        if not snap["counters"]:
            lines.append("  (none)")
        for name, value in snap["counters"].items():
            lines.append(f"  {name:<24} {value}")
        lines.append("latency:")
        if not snap["latency"]:
            lines.append("  (none)")
        for name, hist in snap["latency"].items():
            lines.append(
                f"  {name:<16} n={hist['count']:<7} "
                f"mean={hist['mean_seconds'] * 1e3:.3f}ms "
                f"p50<={hist['p50_seconds'] * 1e3:.3f}ms "
                f"p99<={hist['p99_seconds'] * 1e3:.3f}ms "
                f"max={hist['max_seconds'] * 1e3:.3f}ms"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        """Zero all counters and histograms (tests / long-lived servers)."""
        with self._lock:
            self._counters.clear()
            self._latency.clear()
            self._started = time.time()
