"""Deterministic fault injection between client and server.

:class:`ChaosProxy` is an asyncio TCP proxy that sits between an
advisor client and server and injures the server->client byte stream in
controlled, *seeded* ways — the failure modes the resilience layer
claims to survive:

* **latency** — a fixed delay (plus seeded uniform jitter) before each
  forwarded chunk, to push replies past client deadlines;
* **reset** — abort the client connection (RST) after forwarding a set
  number of response bytes: a reply cut off mid-line;
* **truncation** — forward a prefix of the response then close cleanly
  (FIN), the "server died while writing" case;
* **garbage** — inject seeded non-UTF-8 bytes as a bogus line before
  the first real response, desyncing a naive client;
* **throttling** — forward at most ``throttle_chunk`` bytes at a time
  with a pause between chunks (slow network, not a dead one).

Determinism: everything is driven by the explicit config plus one
``random.Random`` seeded from ``(seed, connection index)``, so a test
run with a fixed seed injects byte-identical faults. ``times`` limits
the destructive faults to the first N proxied connections, after which
the proxy turns transparent — that is how tests exercise the
retry-until-clean path as opposed to permanent degradation.

The ``repro chaos`` CLI subcommand exposes the same proxy for manual
experiments against a live ``repro serve``.
"""

from __future__ import annotations

import asyncio
import contextlib
import random
from dataclasses import dataclass, field

__all__ = ["ChaosConfig", "ChaosProxy"]


@dataclass(frozen=True)
class ChaosConfig:
    """Fault plan for a :class:`ChaosProxy`.

    All byte counts apply to the server->client direction; the
    client->server direction is always forwarded verbatim so requests
    reach the server and the *reply* path is what fails — the harder
    case, since the server may have already acted.
    """

    seed: int = 0
    #: Seconds to wait before forwarding each response chunk.
    latency: float = 0.0
    #: Extra uniform-[0, jitter] delay drawn from the seeded RNG.
    latency_jitter: float = 0.0
    #: Abort (RST) the client connection after forwarding this many
    #: response bytes; ``None`` disables.
    reset_after: int | None = None
    #: Cleanly close (FIN) after forwarding this many response bytes;
    #: ``None`` disables.
    truncate_at: int | None = None
    #: Inject this many seeded garbage bytes (plus a newline) before the
    #: first response byte of a connection; 0 disables.
    garbage_bytes: int = 0
    #: Forward at most this many bytes per write; ``None`` disables.
    throttle_chunk: int | None = None
    #: Seconds to pause between throttled writes.
    throttle_delay: float = 0.0
    #: Apply faults only to the first ``times`` connections (then pass
    #: bytes through untouched); ``None`` means every connection.
    times: int | None = None

    def __post_init__(self) -> None:
        for name in ("latency", "latency_jitter", "throttle_delay"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")
        for name in ("reset_after", "truncate_at", "throttle_chunk", "times"):
            value = getattr(self, name)
            if value is not None and value < (1 if name == "throttle_chunk" else 0):
                raise ValueError(f"{name} must be >= 0, got {value}")
        if self.garbage_bytes < 0:
            raise ValueError(f"garbage_bytes must be >= 0, got {self.garbage_bytes}")


@dataclass
class ChaosStats:
    """Counters of what the proxy actually did (all monotonic)."""

    connections: int = 0
    upstream_failures: int = 0
    resets: int = 0
    truncations: int = 0
    garbage_injections: int = 0
    delayed_chunks: int = 0
    throttled_writes: int = 0
    bytes_to_server: int = 0
    bytes_to_client: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


class ChaosProxy:
    """Seeded-fault TCP proxy for resilience tests and ``repro chaos``.

    Parameters
    ----------
    upstream_host, upstream_port:
        Where the real server listens.
    config:
        The fault plan; a transparent proxy when omitted.
    host, port:
        Listen address; ``port=0`` picks a free port (see :attr:`port`
        after :meth:`start`).
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        config: ChaosConfig | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.config = config if config is not None else ChaosConfig()
        self.host = host
        self.port = port
        self.stats = ChaosStats()
        self._server: asyncio.AbstractServer | None = None
        self._conns: set[asyncio.Task[None]] = set()

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            return
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is None:
            return
        server, self._server = self._server, None
        server.close()
        await server.wait_closed()
        for task in list(self._conns):
            task.cancel()
        if self._conns:
            await asyncio.gather(*self._conns, return_exceptions=True)
        self._conns.clear()

    async def serve_forever(self) -> None:
        await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    # -- connection handling ---------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conns.add(task)
            task.add_done_callback(self._conns.discard)
        conn_index = self.stats.connections
        self.stats.connections += 1
        cfg = self.config
        faulty = cfg.times is None or conn_index < cfg.times
        rng = random.Random(cfg.seed * 1_000_003 + conn_index)
        try:
            up_reader, up_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port
            )
        except OSError:
            self.stats.upstream_failures += 1
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
            return
        upstream = asyncio.ensure_future(self._pump_to_server(reader, up_writer))
        try:
            await self._pump_to_client(up_reader, writer, faulty=faulty, rng=rng)
        finally:
            upstream.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await upstream
            for w in (up_writer, writer):
                if not w.transport.is_closing():
                    w.close()
                with contextlib.suppress(Exception):
                    await w.wait_closed()

    async def _pump_to_server(
        self, reader: asyncio.StreamReader, up_writer: asyncio.StreamWriter
    ) -> None:
        """Forward client bytes verbatim (requests always get through)."""
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                self.stats.bytes_to_server += len(chunk)
                up_writer.write(chunk)
                await up_writer.drain()
            if not up_writer.transport.is_closing():
                with contextlib.suppress(OSError, NotImplementedError):
                    up_writer.write_eof()
        except (ConnectionError, OSError):
            pass

    async def _pump_to_client(
        self,
        up_reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        faulty: bool,
        rng: random.Random,
    ) -> None:
        """Forward server bytes, injuring the stream per the fault plan."""
        cfg = self.config
        forwarded = 0
        garbage_pending = faulty and cfg.garbage_bytes > 0
        try:
            while True:
                chunk = await up_reader.read(65536)
                if not chunk:
                    break
                if faulty and (cfg.latency or cfg.latency_jitter):
                    delay = cfg.latency + (
                        rng.uniform(0.0, cfg.latency_jitter) if cfg.latency_jitter else 0.0
                    )
                    self.stats.delayed_chunks += 1
                    await asyncio.sleep(delay)
                if garbage_pending:
                    # 0xF8-0xFF never appear in valid UTF-8, so the bogus
                    # line is guaranteed to be unparseable, not just unlucky
                    garbage = (
                        bytes(rng.randrange(0xF8, 0x100) for _ in range(cfg.garbage_bytes))
                        + b"\n"
                    )
                    writer.write(garbage)
                    await writer.drain()
                    self.stats.garbage_injections += 1
                    garbage_pending = False
                if faulty and cfg.reset_after is not None:
                    if forwarded + len(chunk) >= cfg.reset_after:
                        keep = max(cfg.reset_after - forwarded, 0)
                        if keep:
                            writer.write(chunk[:keep])
                            await writer.drain()
                            self.stats.bytes_to_client += keep
                        self.stats.resets += 1
                        writer.transport.abort()
                        return
                if faulty and cfg.truncate_at is not None:
                    if forwarded + len(chunk) >= cfg.truncate_at:
                        keep = max(cfg.truncate_at - forwarded, 0)
                        if keep:
                            writer.write(chunk[:keep])
                            await writer.drain()
                            self.stats.bytes_to_client += keep
                        self.stats.truncations += 1
                        return  # caller closes the writer: a clean FIN
                await self._write_out(writer, chunk, faulty=faulty)
                forwarded += len(chunk)
        except (ConnectionError, OSError):
            pass

    async def _write_out(
        self, writer: asyncio.StreamWriter, chunk: bytes, *, faulty: bool
    ) -> None:
        cfg = self.config
        if not (faulty and cfg.throttle_chunk):
            writer.write(chunk)
            await writer.drain()
            self.stats.bytes_to_client += len(chunk)
            return
        for start in range(0, len(chunk), cfg.throttle_chunk):
            piece = chunk[start : start + cfg.throttle_chunk]
            writer.write(piece)
            await writer.drain()
            self.stats.bytes_to_client += len(piece)
            self.stats.throttled_writes += 1
            if cfg.throttle_delay:
                await asyncio.sleep(cfg.throttle_delay)
