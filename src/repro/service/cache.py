"""Policy compilation and the content-addressed policy cache.

The paper's online questions — "what margin X*?" (Section 3), "how many
tasks before checkpointing?" (Section 4.2), "checkpoint now or run one
more task?" (Section 4.3) — all reduce to artifacts that depend only on
``(task law, checkpoint law, reservation R)``. Compiling them once per
policy and caching turns every subsequent query into an O(1) lookup:

* the preemptible optimal margin ``X*`` and its expected work,
* the static optimal task count ``n_opt``,
* the dynamic crossing threshold ``W_int`` (the whole decision rule:
  checkpoint iff accumulated work ``>= W_int``),
* a tabulated decision curve (``E(W_C)`` / ``E(W_+1)`` on a work grid)
  so clients can render Figure 8-10 style plots without integrating.

Keys are *content-addressed*: the canonical law-spec strings
(:meth:`repro.distributions.Distribution.spec`, the same grammar the
CLI parses) plus the reservation, so equal policies hit the same entry
no matter how the laws were constructed. :class:`PolicyCache` keeps an
in-memory LRU and, optionally, persists compiled policies as JSON files
named by the SHA-256 of the key, so a restarted server warms from disk.
"""

from __future__ import annotations

import contextlib
import hashlib
import logging
import math
import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Union

import numpy as np
from numpy.typing import ArrayLike, NDArray

from ..cli import parse_law
from ..distributions import Distribution
from ..kernels import PolicyTable
from ..obs.tracer import Tracer
from ..runtime import atomic
from .metrics import ServiceMetrics

__all__ = [
    "CompiledPolicy",
    "PolicyCache",
    "StalePolicyFormatError",
    "canonical_key",
    "compile_policy",
]

log = logging.getLogger("repro.service.cache")

LawLike = Union[Distribution, str]

#: Bump when the compiled-artifact layout changes: stale on-disk entries
#: from an older layout are recompiled instead of half-deserialized.
#: v2 adds the vectorized kernel table (:class:`repro.kernels.PolicyTable`).
_POLICY_FORMAT = 2


class StalePolicyFormatError(ValueError):
    """A structurally-sound policy entry from another ``_POLICY_FORMAT``.

    Distinct from corruption: the envelope checksum passed and the
    payload is a well-formed policy dict — just an older (or newer)
    layout. The cache recompiles such entries in place instead of
    quarantining them as ``*.corrupt``.
    """

#: On-disk envelope version. v2 wraps the policy dict in
#: ``{"persist_format": 2, "crc32": ..., "policy": {...}}`` (the shared
#: :mod:`repro.runtime.atomic` envelope with ``payload_key="policy"``)
#: so torn or bit-flipped writes are detected; v1 files (bare policy
#: dicts) are treated as a stale layout and recompiled in place.
_PERSIST_FORMAT = 2


def _as_law(law: LawLike, name: str) -> Distribution:
    if isinstance(law, str):
        return parse_law(law)
    if isinstance(law, Distribution):
        return law
    raise TypeError(f"{name} must be a Distribution or a law-spec string, got {type(law).__name__}")


def canonical_key(reservation: float, task_law: LawLike, checkpoint_law: LawLike) -> str:
    """Canonical cache key for a policy, stable across construction paths.

    ``parse_law`` round-trips spec strings through :meth:`spec`, so
    ``"beta:2,5"`` and ``"beta:2,5,0,1"`` (or an equal ``Beta`` object)
    address the same entry.
    """
    task = _as_law(task_law, "task_law").spec()
    ckpt = _as_law(checkpoint_law, "checkpoint_law").spec()
    if not reservation > 0.0:
        raise ValueError(f"reservation must be positive, got {reservation}")
    return f"R={float(reservation):.17g}|task={task}|ckpt={ckpt}"


@dataclass(frozen=True)
class CompiledPolicy:
    """Precomputed decision artifacts for one ``(D_X, D_C, R)`` policy.

    Each artifact is ``None`` when its solver rejects the laws (e.g.
    the Section 3 margin needs a bounded checkpoint law, the dynamic
    rule needs the task law supported on ``[0, inf)``, Section 4.3.1);
    the other artifacts stay usable.
    """

    reservation: float
    task_spec: str
    checkpoint_spec: str
    #: Section 3: optimal margin for a preemptible application.
    x_opt: float | None
    margin_expected_work: float | None
    #: Section 4.2: static-optimal task count and its expected work.
    n_opt: int | None
    static_expected_work: float | None
    #: Section 4.3: dynamic threshold — checkpoint iff work >= w_int.
    w_int: float | None
    #: Tabulated decision curve on a uniform work grid over [0, R].
    curve_w: tuple[float, ...] = field(default=(), repr=False)
    curve_checkpoint: tuple[float, ...] = field(default=(), repr=False)
    curve_continue: tuple[float, ...] = field(default=(), repr=False)
    #: Dense kernel table (adaptive grid + value function); ``None`` for
    #: ``kernel="exact"`` compiles and for rejected task laws.
    table: "PolicyTable | None" = field(default=None, repr=False, compare=False)

    @property
    def key(self) -> str:
        return f"R={self.reservation:.17g}|task={self.task_spec}|ckpt={self.checkpoint_spec}"

    def should_checkpoint(self, work: float) -> bool:
        """The cached dynamic rule at accumulated work ``work``.

        Tie convention: checkpoints at exactly ``work == w_int``, the
        same boundary behaviour as
        :meth:`repro.core.dynamic.DynamicStrategy.should_checkpoint`.
        """
        if self.w_int is None:
            raise ValueError(
                "policy has no dynamic threshold (task law rejected by the "
                f"dynamic strategy): task={self.task_spec}"
            )
        if self.table is not None:
            return bool(self.table.decide(work)[0])
        return work >= self.w_int

    def e_checkpoint_at(self, work: "ArrayLike") -> "NDArray[np.float64]":
        """Interpolated ``E(W_C)``: kernel table when present, else the
        uniform decision curve."""
        if self.table is not None:
            return self.table.e_checkpoint_at(work)
        return np.interp(
            np.asarray(work, dtype=float), self.curve_w, self.curve_checkpoint
        )

    def e_continue_at(self, work: "ArrayLike") -> "NDArray[np.float64]":
        """Interpolated ``E(W_{+1})`` (same sources as
        :meth:`e_checkpoint_at`)."""
        if self.table is not None:
            return self.table.e_continue_at(work)
        return np.interp(
            np.asarray(work, dtype=float), self.curve_w, self.curve_continue
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "format": _POLICY_FORMAT,
            "reservation": self.reservation,
            "task_spec": self.task_spec,
            "checkpoint_spec": self.checkpoint_spec,
            "x_opt": self.x_opt,
            "margin_expected_work": self.margin_expected_work,
            "n_opt": self.n_opt,
            "static_expected_work": self.static_expected_work,
            "w_int": self.w_int,
            "curve_w": list(self.curve_w),
            "curve_checkpoint": list(self.curve_checkpoint),
            "curve_continue": list(self.curve_continue),
            "table": None if self.table is None else self.table.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CompiledPolicy":
        fmt = data.get("format")
        if fmt != _POLICY_FORMAT:
            if isinstance(fmt, int) and not isinstance(fmt, bool):
                # Sound payload, older/newer layout: recompile, don't
                # quarantine (pre-kernel v1 entries land here).
                raise StalePolicyFormatError(f"stale policy format: {fmt!r}")
            raise ValueError(f"unsupported policy format: {fmt!r}")
        table_raw = data.get("table")
        return cls(
            table=None if table_raw is None else PolicyTable.from_dict(table_raw),
            reservation=float(data["reservation"]),
            task_spec=str(data["task_spec"]),
            checkpoint_spec=str(data["checkpoint_spec"]),
            x_opt=None if data["x_opt"] is None else float(data["x_opt"]),
            margin_expected_work=(
                None
                if data["margin_expected_work"] is None
                else float(data["margin_expected_work"])
            ),
            n_opt=None if data["n_opt"] is None else int(data["n_opt"]),
            static_expected_work=(
                None if data["static_expected_work"] is None else float(data["static_expected_work"])
            ),
            w_int=None if data["w_int"] is None else float(data["w_int"]),
            curve_w=tuple(float(v) for v in data["curve_w"]),
            curve_checkpoint=tuple(float(v) for v in data["curve_checkpoint"]),
            curve_continue=tuple(float(v) for v in data["curve_continue"]),
        )

    def summary(self) -> str:
        parts = [
            f"R={self.reservation:g}",
            "X*=-" if self.x_opt is None else f"X*={self.x_opt:.6g}",
            "n_opt=-" if self.n_opt is None else f"n_opt={self.n_opt}",
            "W_int=-" if self.w_int is None else f"W_int={self.w_int:.6g}",
        ]
        return ", ".join(parts)


def compile_policy(
    reservation: float,
    task_law: LawLike,
    checkpoint_law: LawLike,
    *,
    curve_points: int = 129,
    kernel: str = "table",
) -> CompiledPolicy:
    """Run all three solvers once and pack the results for caching.

    This is the expensive path; everything the advisor serves afterwards
    reads from the returned object.

    ``kernel`` selects how the dynamic rule is compiled:

    * ``"table"`` (default): one vectorized
      :func:`repro.kernels.build_policy_table` pass supplies the
      threshold, the decision curve *and* the optimal-stopping value —
      skipping the 257-point quadrature scan and the per-point curve
      quadratures of the scalar path (the compile-latency hot spot).
      The stored threshold is still refined by Brent iteration on the
      exact advantage, so decisions are identical to ``"exact"``.
    * ``"exact"``: the pre-kernel scalar path
      (:meth:`DynamicStrategy.crossing_point` + per-point quadrature
      curves); kept intact as the differential-test oracle and escape
      hatch.
    """
    from ..core import DynamicStrategy, StaticStrategy, preemptible
    from ..kernels import build_policy_table

    if kernel not in ("table", "exact"):
        raise ValueError(f"kernel must be 'table' or 'exact', got {kernel!r}")
    task = _as_law(task_law, "task_law")
    ckpt = _as_law(checkpoint_law, "checkpoint_law")

    x_opt: float | None = None
    margin_expected: float | None = None
    try:
        margin = preemptible.solve(reservation, ckpt)
        x_opt = margin.x_opt
        margin_expected = margin.expected_work_opt
    except ValueError:
        pass

    n_opt: int | None = None
    static_expected: float | None = None
    try:
        static_sol = StaticStrategy(reservation, task, ckpt).solve()
        n_opt = static_sol.n_opt
        static_expected = static_sol.expected_work_opt
    except (ValueError, NotImplementedError):
        pass

    w_int: float | None = None
    table: PolicyTable | None = None
    curve_w: tuple[float, ...] = ()
    curve_ckpt: tuple[float, ...] = ()
    curve_cont: tuple[float, ...] = ()
    if kernel == "table":
        try:
            table = build_policy_table(reservation, task, ckpt)
        except ValueError:
            table = None
        if table is not None:
            w_int = table.w_int
            # The uniform curve is kept (same resolution as the exact
            # path) so plot clients and v1-era consumers read the same
            # shape; values come from the table, not fresh quadratures.
            grid = np.linspace(0.0, float(reservation), curve_points)
            curve_w = tuple(float(v) for v in grid)
            curve_ckpt = tuple(float(v) for v in table.e_checkpoint_at(grid))
            curve_cont = tuple(float(v) for v in table.e_continue_at(grid))
    else:
        try:
            dyn = DynamicStrategy(reservation, task, ckpt)
        except ValueError:
            dyn = None
        if dyn is not None:
            w_int = dyn.crossing_point()
            curve = dyn.decision_curve(points=curve_points)
            curve_w = tuple(float(v) for v in curve.w)
            curve_ckpt = tuple(float(v) for v in curve.checkpoint_now)
            curve_cont = tuple(float(v) for v in curve.one_more_task)

    return CompiledPolicy(
        reservation=float(reservation),
        task_spec=task.spec(),
        checkpoint_spec=ckpt.spec(),
        x_opt=x_opt,
        margin_expected_work=margin_expected,
        n_opt=n_opt,
        static_expected_work=static_expected,
        w_int=w_int,
        curve_w=curve_w,
        curve_checkpoint=curve_ckpt,
        curve_continue=curve_cont,
        table=table,
    )


class PolicyCache:
    """LRU of :class:`CompiledPolicy` with optional JSON disk persistence.

    Disk writes are crash-safe: each entry is CRC32-checksummed, written
    to a temp file, ``fsync``'d, then atomically renamed into place. A
    torn or bit-flipped file found at read time is *quarantined* (moved
    to ``<file>.corrupt``, logged, counted in ``cache.corrupt``) and the
    policy recompiled, never silently trusted or discarded; temp files
    left behind by a crashed process are swept on startup.

    Parameters
    ----------
    maxsize:
        In-memory LRU capacity (least-recently-used entries evicted).
    path:
        Optional directory for on-disk persistence. Each policy is one
        JSON file named ``<sha256(key)[:24]>.json``; lookups fall back
        to disk on a memory miss, and every compile is written through.
    metrics:
        Optional :class:`ServiceMetrics` receiving ``cache.hits``,
        ``cache.misses``, ``cache.disk_hits``, ``cache.evictions`` and
        ``cache.corrupt`` (quarantined on-disk entries), plus the
        ``cache.compile`` latency histogram (one sample per compile).
    curve_points:
        Grid resolution of the tabulated decision curve.
    kernel:
        ``"table"`` (default) compiles through the vectorized kernel
        tabulation; ``"exact"`` forces the scalar oracle path (see
        :func:`compile_policy`). A table-kernel cache treats on-disk
        entries *without* a table as misses so exact-compiled or
        pre-kernel entries are upgraded in place.
    tracer:
        Optional span tracer; every compile (the expensive path) gets a
        ``cache.compile`` span tagged with the policy key. Hits are not
        spanned — they are the O(1) fast path.
    """

    def __init__(
        self,
        maxsize: int = 64,
        path: str | None = None,
        metrics: ServiceMetrics | None = None,
        *,
        curve_points: int = 129,
        kernel: str = "table",
        tracer: Tracer | None = None,
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        if kernel not in ("table", "exact"):
            raise ValueError(f"kernel must be 'table' or 'exact', got {kernel!r}")
        self.maxsize = maxsize
        self.path = path
        self.metrics = metrics
        self.tracer = tracer
        self.curve_points = curve_points
        self.kernel = kernel
        self._entries: OrderedDict[str, CompiledPolicy] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.evictions = 0
        self.quarantined = 0
        self.stale_format = 0
        if path is not None:
            os.makedirs(path, exist_ok=True)
            self._sweep_stale_tmp()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    # -- key/file helpers ------------------------------------------------

    def _file_for(self, key: str) -> str:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:24]
        return os.path.join(self.path, f"{digest}.json")  # type: ignore[arg-type]

    def _incr(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.incr(name)

    # -- lookup ----------------------------------------------------------

    def get(
        self,
        reservation: float,
        task_law: LawLike,
        checkpoint_law: LawLike,
    ) -> CompiledPolicy:
        """Fetch (or compile-and-install) the policy for the given triple."""
        key = canonical_key(reservation, task_law, checkpoint_law)
        policy = self._entries.get(key)
        if policy is not None:
            self.hits += 1
            self._incr("cache.hits")
            self._entries.move_to_end(key)
            return policy
        self.misses += 1
        self._incr("cache.misses")
        policy = self._load_from_disk(key)
        if policy is None:
            policy = self._compile(key, reservation, task_law, checkpoint_law)
            self._write_to_disk(key, policy)
        self._install(key, policy)
        return policy

    def _compile(
        self,
        key: str,
        reservation: float,
        task_law: LawLike,
        checkpoint_law: LawLike,
    ) -> CompiledPolicy:
        """Compile with observability: a span and a latency sample."""
        span_cm = (
            self.tracer.span("cache.compile", tags={"key": key})
            if self.tracer is not None and self.tracer.enabled
            else contextlib.nullcontext()
        )
        start = time.perf_counter()
        with span_cm:
            policy = compile_policy(
                reservation,
                task_law,
                checkpoint_law,
                curve_points=self.curve_points,
                kernel=self.kernel,
            )
        if self.metrics is not None:
            self.metrics.observe_latency("cache.compile", time.perf_counter() - start)
        return policy

    def warm(
        self, reservation: float, task_law: LawLike, checkpoint_law: LawLike
    ) -> CompiledPolicy:
        """Alias of :meth:`get` for precompilation loops (``repro warm``)."""
        return self.get(reservation, task_law, checkpoint_law)

    def peek(self, key: str) -> CompiledPolicy | None:
        """Memory-only lookup by canonical key; no compile, no accounting."""
        return self._entries.get(key)

    def _install(self, key: str, policy: CompiledPolicy) -> None:
        self._entries[key] = policy
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
            self._incr("cache.evictions")

    # -- persistence -----------------------------------------------------

    def _sweep_stale_tmp(self) -> None:
        """Unlink ``*.tmp.*`` leftovers from processes that crashed mid-write."""
        assert self.path is not None
        atomic.sweep_stale_tmp(self.path, marker=".json.tmp.")

    def _quarantine(self, file_path: str, reason: str) -> None:
        """Move a corrupt entry aside (``<file>.corrupt``) for post-mortem.

        Never silently discard: the rename preserves the evidence, the
        log line and the ``cache.corrupt`` metric make the event
        visible, and the caller recompiles a fresh entry in its place.
        """
        corrupt_path = f"{file_path}.corrupt"
        with contextlib.suppress(OSError):
            # Quarantine, not a durable write: no new content is created,
            # so the atomic tmp+fsync+rename protocol does not apply.
            os.replace(file_path, corrupt_path)  # lint: allow[REP003]
        self.quarantined += 1
        self._incr("cache.corrupt")
        log.warning(
            "quarantined corrupt policy file %s -> %s (%s); recompiling",
            file_path,
            corrupt_path,
            reason,
        )

    def _load_from_disk(self, key: str) -> CompiledPolicy | None:
        if self.path is None:
            return None
        file_path = self._file_for(key)
        try:
            payload = atomic.read_json_envelope(
                file_path, fmt=_PERSIST_FORMAT, payload_key="policy"
            )
        except OSError:
            return None  # plain miss (or unreadable): compile fresh
        except atomic.EnvelopeFormatError:
            return None  # pre-checksum layout: recompile and overwrite
        except atomic.EnvelopeCorruptionError as exc:
            self._quarantine(file_path, str(exc))
            return None
        try:
            policy = CompiledPolicy.from_dict(payload)
        except StalePolicyFormatError as exc:
            # Valid entry from another _POLICY_FORMAT (e.g. pre-kernel
            # v1): a clean miss, recompiled and overwritten in place —
            # never quarantined, it is not corruption.
            self.stale_format += 1
            self._incr("cache.stale_format")
            log.info("recompiling stale-format policy file %s (%s)", file_path, exc)
            return None
        except (ValueError, KeyError, TypeError) as exc:
            self._quarantine(file_path, f"undecodable policy ({exc})")
            return None
        if policy.key != key:
            return None  # hash collision or stale content: recompile
        if self.kernel == "table" and policy.w_int is not None and policy.table is None:
            return None  # exact-compiled entry in a table cache: upgrade
        self.disk_hits += 1
        self._incr("cache.disk_hits")
        return policy

    def _write_to_disk(self, key: str, policy: CompiledPolicy) -> None:
        if self.path is None:
            return
        # Full crash-safe protocol (tmp + fsync + rename + dir fsync)
        # via the shared helper; a failed write is a cache non-event.
        with contextlib.suppress(OSError):
            atomic.atomic_write_json(
                self._file_for(key),
                policy.to_dict(),
                fmt=_PERSIST_FORMAT,
                payload_key="policy",
            )

    # -- introspection ---------------------------------------------------

    def stats(self) -> dict[str, object]:
        """Hit/miss accounting plus current occupancy."""
        total = self.hits + self.misses
        return {
            "size": len(self._entries),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
            "stale_format": self.stale_format,
            "kernel": self.kernel,
            # Strict JSON: "no lookups yet" is null, never NaN (REP002).
            "hit_rate": self.hits / total if total else None,
            "persistent": self.path is not None,
        }

    def clear(self) -> None:
        """Drop all in-memory entries and reset accounting (disk kept)."""
        self._entries.clear()
        self.hits = self.misses = self.disk_hits = self.evictions = 0
        self.quarantined = 0
        self.stale_format = 0
