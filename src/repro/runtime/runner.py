"""Reservation-budget execution of real iterative applications.

:mod:`repro.simulation.engine` replays the paper's model against
*sampled* task durations; this runner executes an **actual**
:class:`~repro.workflows.checkpointable.IterativeApplication` — Jacobi,
Gauss-Seidel, SOR, CG, GMRES — under a reservation budget, with the
same policy objects (:class:`repro.core.policies.WorkflowPolicy`) or a
cached advisor policy deciding *checkpoint now or run one more task* at
every iteration boundary, and a :class:`repro.runtime.store.CheckpointStore`
making completed checkpoints durable.

Three behaviours close the gap between the model and a crashing world:

* **Deadline-aware checkpoint abort** — a checkpoint the duration model
  says cannot finish before the reservation ends is *never started*
  (``checkpoints_skipped_deadline``); starting it would burn budget to
  produce a torn snapshot. When an optimistic estimate starts one that
  then overruns, the store records a *torn* generation — exactly the
  artifact a mid-write crash leaves — and recovery skips it.
* **Resume** — each reservation begins by restoring the newest *valid*
  generation (quarantining invalid ones), so a multi-reservation
  campaign carries work forward across process deaths; with no valid
  checkpoint the application restarts from its pristine initial state,
  the paper's "all work is lost" outcome.
* **Telemetry** — every attempted checkpoint duration feeds an optional
  :class:`repro.obs.DurationRecorder` (the drift detector's input), and
  aggregate counters land in :func:`repro.obs.metrics.global_registry`
  under ``runtime.*``, next to the simulation engine's ``sim.*``.

Realized-vs-expected: each :class:`ReservationOutcome` carries the
policy's model prediction (``expected_work``) beside the realized
``work_saved``, the same comparison
:class:`repro.simulation.campaign.CampaignResult` reports for simulated
campaigns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Union

from .._validation import as_generator, check_integer, check_nonnegative, check_positive
from ..core.policies import StaticCountPolicy, WorkflowPolicy
from ..obs.metrics import global_registry
from .store import CheckpointStore, NoCheckpointError

if TYPE_CHECKING:  # pragma: no cover
    from ..distributions import Distribution, RngLike
    from ..obs.drift import DurationRecorder
    from ..obs.tracer import Tracer
    from ..service.advisor import Advisor
    from ..workflows.checkpointable import IterativeApplication
    from ..workflows.instrumentation import MachineModel
    from .faults import StrikeProcess, StrikeSchedule

__all__ = [
    "AdvisorPolicy",
    "CampaignOutcome",
    "ReservationOutcome",
    "ReservationRunner",
    "estimate_checkpoint_duration",
]


def estimate_checkpoint_duration(
    law: "Distribution", estimator: Union[str, float] = "pessimistic"
) -> float:
    """Upper estimate of the next checkpoint's duration for the
    deadline-abort test ("never start a checkpoint the model says
    cannot finish before ``R``").

    ``"pessimistic"`` uses the law's upper bound ``C_max`` (the paper's
    risk-free margin), falling back to the 99.9th percentile for
    unbounded laws; ``"mean"`` uses ``E[C]`` (optimistic — overruns
    become torn checkpoints); a float ``q`` in (0, 1) uses that
    quantile.
    """
    if estimator == "pessimistic":
        upper = float(law.upper)
        return upper if math.isfinite(upper) else float(law.ppf(0.999))
    if estimator == "mean":
        return float(law.mean())
    q = float(estimator)
    if not 0.0 < q < 1.0:
        raise ValueError(f"estimator must be 'pessimistic', 'mean' or a quantile in (0,1), got {estimator!r}")
    return float(law.ppf(q))


class AdvisorPolicy(WorkflowPolicy):
    """A :class:`WorkflowPolicy` served by the checkpoint-advisor stack.

    Wraps an :class:`repro.service.advisor.Advisor` (and through it the
    compiled-policy cache): ``reset(R)`` is one cache fetch, every
    decision afterwards is the O(1) threshold comparison, and the
    compiled artifacts expose the model's expected saved work for the
    realized-vs-expected report.

    ``kernel="exact"`` swaps every boundary decision for the scalar
    oracle (one quadrature per decision, crossing pinned from the
    compiled policy so the tie at the threshold agrees) — the
    differential-test escape hatch, decision-identical to the fast path
    and orders of magnitude slower.
    """

    name = "advisor"

    def __init__(
        self, advisor: "Advisor", task_law, checkpoint_law, *, kernel: str = "table"
    ) -> None:
        if kernel not in ("table", "exact"):
            raise ValueError(f"kernel must be 'table' or 'exact', got {kernel!r}")
        self.advisor = advisor
        self.task_law = task_law
        self.checkpoint_law = checkpoint_law
        self.kernel = kernel
        self.threshold_is_exact = kernel == "table"
        self._compiled = None
        self._oracle = None

    def reset(self, R: float) -> None:
        self._compiled = self.advisor.policy(R, self.task_law, self.checkpoint_law)
        # Discrete checkpoint laws can make the decision region a union
        # of intervals; the single-comparison fast path only holds for
        # threshold-form tables.
        table = self._compiled.table
        self.threshold_is_exact = self.kernel == "table" and (
            table is None or table.is_threshold
        )
        if self.kernel == "exact":
            from ..core.dynamic import DynamicStrategy
            from ..service.cache import _as_law

            oracle = DynamicStrategy(
                R,
                _as_law(self.task_law, "task_law"),
                _as_law(self.checkpoint_law, "checkpoint_law"),
            )
            if self._compiled.w_int is not None:
                oracle.pin_crossing(self._compiled.w_int)
            self._oracle = oracle

    def should_checkpoint(self, work_done: float, tasks_done: int) -> bool:
        if self._compiled is None:
            raise RuntimeError("reset(R) must be called before decisions")
        if self._oracle is not None:
            return self._oracle.should_checkpoint(work_done)
        return self._compiled.should_checkpoint(work_done)

    def work_threshold(self, R: float) -> Optional[float]:
        return self.advisor.policy(R, self.task_law, self.checkpoint_law).w_int

    def expected_work(self, R: float) -> Optional[float]:
        """Model-expected saved work for one reservation of length ``R``
        (the static optimum — the comparable scalar the compiled policy
        carries)."""
        policy = self.advisor.policy(R, self.task_law, self.checkpoint_law)
        return policy.static_expected_work


@dataclass
class ReservationOutcome:
    """What one reservation actually did.

    ``work_saved`` counts modelled task-seconds captured by *completed*
    checkpoints; ``expected_work`` is the policy's prediction of that
    quantity (``None`` when the policy has no model), mirroring the
    simulated campaign's realized-vs-expected report.
    """

    R: float
    time_used: float = 0.0
    iterations_run: int = 0
    iterations_saved: int = 0
    work_saved: float = 0.0
    expected_work: Optional[float] = None
    checkpoints_succeeded: int = 0
    checkpoints_failed: int = 0
    checkpoints_skipped_deadline: int = 0
    recovered_generation: Optional[int] = None
    recovery_fallbacks: int = 0
    converged: bool = False
    solution_saved: bool = False
    strikes: int = 0
    work_lost: float = 0.0
    strike_recoveries: int = 0
    strike_restarts: int = 0
    proactive_checkpoints: int = 0
    events: list[tuple[str, float]] = field(default_factory=list)

    def log(self, kind: str, time: float) -> None:
        self.events.append((kind, time))

    @property
    def utilization(self) -> float:
        """Saved work per reserved second."""
        return self.work_saved / self.R if self.R else 0.0


@dataclass
class CampaignOutcome:
    """A multi-reservation campaign driven to convergence (or budget)."""

    reservations: list[ReservationOutcome] = field(default_factory=list)
    converged: bool = False
    solution_saved: bool = False
    final_iteration: int = 0
    final_residual: float = math.inf

    @property
    def reservations_used(self) -> int:
        return len(self.reservations)

    @property
    def total_work_saved(self) -> float:
        return sum(r.work_saved for r in self.reservations)

    @property
    def total_time_used(self) -> float:
        return sum(r.time_used for r in self.reservations)

    def summary(self) -> str:
        status = "converged" if self.solution_saved else (
            "converged (UNSAVED)" if self.converged else "INCOMPLETE"
        )
        return (
            f"{status}: iteration {self.final_iteration}, "
            f"residual {self.final_residual:.3e}, "
            f"{self.reservations_used} reservations, "
            f"work saved {self.total_work_saved:.4g}s"
        )


class ReservationRunner:
    """Drive an application through fixed-length reservations.

    Parameters
    ----------
    app:
        The live application (mutated in place).
    store:
        Durable or in-memory checkpoint store.
    machine:
        :class:`repro.workflows.instrumentation.MachineModel` supplying
        the modelled duration of each iteration (the virtual clock; real
        wall time of the underlying linear algebra is irrelevant to the
        reservation model).
    checkpoint_law:
        Law of the checkpoint duration ``D_C``; sampled per attempt and
        fed to ``recorder``.
    policy:
        Checkpoint decision rule; defaults to
        ``StaticCountPolicy(1)`` (checkpoint at every boundary). Use
        :class:`AdvisorPolicy` for the cached paper-optimal rule.
    recovery:
        Restart cost ``r`` charged at the start of every reservation
        that begins from a checkpoint (Section 2).
    deadline_estimator:
        See :func:`estimate_checkpoint_duration`.
    rng:
        Seed or generator for machine noise and checkpoint durations.
    recorder, recorder_key:
        Optional :class:`repro.obs.DurationRecorder` fed every attempted
        checkpoint duration (key defaults to the law's spec).
    strikes:
        Optional :class:`repro.runtime.faults.StrikeProcess`. When set,
        each reservation draws a schedule of exponential-rate strikes
        (and, with a predictor, prediction windows): a strike kills the
        in-flight task or checkpoint, loses all un-checkpointed segment
        work, and forces recovery from the newest valid generation —
        or a restart from pristine state when none exists. Policies
        exposing ``set_window`` (``FailureAwareDynamicPolicy`` with a
        predictor) are told at every boundary whether the clock sits
        inside a predicted window, enabling proactive checkpoints.
    tracer:
        Optional :class:`repro.obs.tracer.Tracer`; strike recoveries
        emit ``failures.recover`` spans tagged with the restored
        generation.
    """

    def __init__(
        self,
        app: "IterativeApplication",
        store: CheckpointStore,
        *,
        machine: "MachineModel",
        checkpoint_law: "Distribution",
        policy: WorkflowPolicy | None = None,
        recovery: float = 0.0,
        deadline_estimator: Union[str, float] = "pessimistic",
        rng: "RngLike" = None,
        recorder: "DurationRecorder | None" = None,
        recorder_key: str | None = None,
        max_iterations_per_reservation: int = 1_000_000,
        strikes: "StrikeProcess | None" = None,
        tracer: "Tracer | None" = None,
    ) -> None:
        self.app = app
        self.store = store
        self.machine = machine
        self.checkpoint_law = checkpoint_law
        self.policy = policy if policy is not None else StaticCountPolicy(1)
        self.recovery = check_nonnegative(recovery, "recovery")
        self.deadline_estimator = deadline_estimator
        self._c_estimate = estimate_checkpoint_duration(checkpoint_law, deadline_estimator)
        self.strikes = strikes
        self.tracer = tracer
        self.rng = as_generator(rng)
        self.recorder = recorder
        self.recorder_key = (
            recorder_key if recorder_key is not None else checkpoint_law.spec()
        )
        self.max_iterations_per_reservation = check_integer(
            max_iterations_per_reservation, "max_iterations_per_reservation", minimum=1
        )
        # Pristine state: what "all work is lost" restarts from.
        self._initial_payload = app.serialize_state()

    # -- resume ----------------------------------------------------------

    def resume(
        self, outcome: ReservationOutcome | None = None, at: float = 0.0
    ) -> Optional[int]:
        """Restore ``app`` from the newest valid generation.

        Returns the generation restored, or ``None`` when the store has
        no valid snapshot — in which case the application is reset to
        its pristine initial state (the work is gone; that is the
        point). ``at`` timestamps the log entries (0 at reservation
        start; the strike time for mid-reservation recoveries).
        """
        quarantined_before = self.store.quarantined
        try:
            record = self.store.recover(self.app)
        except NoCheckpointError:
            if self.app.iteration_count > 0:
                self.app.restore_state(self._initial_payload)
            if outcome is not None:
                outcome.recovery_fallbacks += self.store.quarantined - quarantined_before
                outcome.log("restart-from-scratch", at)
            return None
        if outcome is not None:
            outcome.recovered_generation = record.generation
            outcome.recovery_fallbacks += self.store.quarantined - quarantined_before
            outcome.log(f"recovered-gen-{record.generation}", at)
        return record.generation

    # -- one reservation -------------------------------------------------

    def run_reservation(self, R: float) -> ReservationOutcome:
        """Execute one reservation of length ``R`` (virtual time)."""
        R = check_positive(R, "R")
        if self.recovery >= R:
            raise ValueError(f"recovery {self.recovery} consumes the whole reservation {R}")
        outcome = ReservationOutcome(R=R)
        app = self.app
        schedule = self.strikes.schedule(R) if self.strikes is not None else None
        windowed = schedule is not None and hasattr(self.policy, "set_window")
        proactive_base = getattr(self.policy, "proactive_decisions", 0)
        t = 0.0
        if self.resume(outcome) is not None:
            t += self.recovery
            if self.recovery > 0.0:
                outcome.log("recovery-cost", t)

        self.policy.reset(R - t)
        threshold = self._fast_threshold(R - t)
        outcome.expected_work = self._expected_work(R - t)
        seg_work = 0.0
        seg_tasks = 0

        while True:
            if outcome.iterations_run >= self.max_iterations_per_reservation:
                raise RuntimeError("reservation iteration budget exhausted")
            if windowed:
                self.policy.set_window(schedule.in_window(t))
            if app.converged:
                outcome.converged = True
                outcome.log("converged", t)
                if seg_tasks > 0 or self.store.checkpointed_iteration < app.iteration_count:
                    status, t = self._attempt_checkpoint(
                        t, R, seg_work, seg_tasks, outcome, schedule
                    )
                    if status == "strike":
                        # The final checkpoint was torn by a strike: the
                        # solver rolls back and must re-converge in what
                        # remains of the reservation.
                        outcome.converged = False
                        t, seg_work, seg_tasks, threshold = self._strike_recover(
                            t, R, seg_work, outcome
                        )
                        if t < R:
                            continue
                        break
                    outcome.solution_saved = status == "committed"
                else:
                    outcome.solution_saved = True
                break
            if seg_tasks > 0 and (
                seg_work >= threshold
                if threshold is not None
                else self.policy.should_checkpoint(seg_work, seg_tasks)
            ):
                status, t = self._attempt_checkpoint(
                    t, R, seg_work, seg_tasks, outcome, schedule
                )
                if status == "committed":
                    seg_work = 0.0
                    seg_tasks = 0
                    self.policy.reset(R - t)  # §4.4: new segment in the remainder
                    threshold = self._fast_threshold(R - t)
                    continue
                if status == "strike":
                    t, seg_work, seg_tasks, threshold = self._strike_recover(
                        t, R, seg_work, outcome
                    )
                    if t < R:
                        continue
                break  # deadline abort, torn overrun or IO error: nothing more saved
            duration = self.machine.duration(app.work_per_iteration, self.rng)
            strike = schedule.next_strike(t) if schedule is not None else None
            if strike is not None and strike < min(t + duration, R):
                t, seg_work, seg_tasks, threshold = self._strike_recover(
                    strike, R, seg_work, outcome
                )
                if t < R:
                    continue
                break
            if t + duration >= R:
                outcome.log("task-cut-short", R)
                t = R
                break
            app.iterate()
            t += duration
            seg_work += duration
            seg_tasks += 1
            outcome.iterations_run += 1

        outcome.proactive_checkpoints = (
            getattr(self.policy, "proactive_decisions", 0) - proactive_base
        )
        outcome.time_used = min(t, R)
        registry = global_registry()
        registry.incr("runtime.reservations")
        registry.incr("runtime.iterations", outcome.iterations_run)
        registry.incr("runtime.checkpoints_succeeded", outcome.checkpoints_succeeded)
        registry.incr("runtime.checkpoints_failed", outcome.checkpoints_failed)
        registry.incr(
            "runtime.checkpoints_skipped_deadline", outcome.checkpoints_skipped_deadline
        )
        registry.observe("runtime.work_saved", outcome.work_saved)
        if self.strikes is not None:
            registry.incr("failures.strikes", outcome.strikes)
            registry.incr(
                "failures.recoveries_from_checkpoint", outcome.strike_recoveries
            )
            registry.incr("failures.restarts_from_scratch", outcome.strike_restarts)
            registry.incr(
                "failures.proactive_checkpoints", outcome.proactive_checkpoints
            )
            registry.observe("failures.work_lost", outcome.work_lost)
        return outcome

    def _attempt_checkpoint(
        self,
        t: float,
        R: float,
        seg_work: float,
        seg_tasks: int,
        outcome: ReservationOutcome,
        schedule: "StrikeSchedule | None" = None,
    ) -> tuple[str, float]:
        """Deadline-gated checkpoint; returns ``(status, new clock)``.

        ``status`` is ``"committed"``, ``"skipped"`` (deadline abort),
        ``"torn"`` (the realization overran ``R``), ``"error"`` (IO
        failure) or ``"strike"`` (a strike landed mid-write; the clock
        returned is the strike time and the store holds a torn
        generation, exactly the artifact a SIGKILL mid-write leaves).
        """
        if t + self._c_estimate > R:
            outcome.checkpoints_skipped_deadline += 1
            outcome.log("checkpoint-skipped-deadline", t)
            return "skipped", t
        c = float(self.checkpoint_law.sample(1, self.rng)[0])
        if self.recorder is not None:
            self.recorder.record(self.recorder_key, c)
        strike = schedule.next_strike(t) if schedule is not None else None
        if strike is not None and strike < min(t + c, R):
            # The strike kills the process mid-write: the bytes on disk
            # stop at the kill point, and recovery must quarantine the
            # torn generation on its way to the newest valid snapshot.
            self.store.write_torn(self.app)
            outcome.checkpoints_failed += 1
            outcome.log("checkpoint-strike-torn", strike)
            return "strike", strike
        if t + c > R:
            # The estimate was optimistic and the realization overran:
            # the write is cut off by the reservation end — a torn
            # generation recovery must (and does) skip.
            self.store.write_torn(self.app)
            outcome.checkpoints_failed += 1
            outcome.log("checkpoint-torn", R)
            return "torn", R
        try:
            record = self.store.write(self.app)
        except OSError as exc:
            # Disk full / IO error: the checkpoint failed but the
            # process lives. The reservation ends (nothing more can be
            # durably saved) and the budget is charged for the attempt;
            # the next reservation resumes from the last good snapshot.
            outcome.checkpoints_failed += 1
            outcome.log(f"checkpoint-write-error:{exc.errno}", t + c)
            global_registry().incr("runtime.checkpoint.write_errors")
            return "error", t + c
        outcome.checkpoints_succeeded += 1
        outcome.work_saved += seg_work
        outcome.iterations_saved += seg_tasks
        outcome.log(f"checkpoint-gen-{record.generation}", t + c)
        return "committed", t + c

    def _strike_recover(
        self,
        strike_t: float,
        R: float,
        seg_work: float,
        outcome: ReservationOutcome,
    ) -> tuple[float, float, int, Optional[float]]:
        """Handle one mid-reservation strike at time ``strike_t``.

        Un-checkpointed segment work is lost; the application rolls back
        to the newest valid generation (charging the recovery cost) or
        to its pristine initial state when no valid snapshot exists.
        Returns the new ``(clock, seg_work, seg_tasks, threshold)``;
        while the clock is still inside the reservation the policy is
        re-anchored on the remaining budget (§4.4 re-anchoring, the same
        convention the failure-aware simulator uses).
        """
        outcome.strikes += 1
        outcome.work_lost += seg_work
        outcome.log("strike", strike_t)
        t = strike_t
        if self.tracer is not None:
            with self.tracer.span(
                "failures.recover", tags={"strike_time": f"{strike_t:.6g}"}
            ) as span:
                restored = self.resume(outcome, at=strike_t)
                span.tags["generation"] = str(restored)
        else:
            restored = self.resume(outcome, at=strike_t)
        if restored is not None:
            outcome.strike_recoveries += 1
            t += self.recovery
            if self.recovery > 0.0:
                outcome.log("recovery-cost", t)
        else:
            outcome.strike_restarts += 1
        if t < R:
            self.policy.reset(R - t)
            threshold = self._fast_threshold(R - t)
        else:
            threshold = None
        return t, 0.0, 0, threshold

    def _fast_threshold(self, budget: float) -> Optional[float]:
        """Inline work threshold for the decision loop, when exact.

        Only policies that advertise ``threshold_is_exact`` (their
        ``should_checkpoint`` *is* ``work >= work_threshold``) are
        inlined; anything else — or a policy that cannot produce a
        threshold for this budget — keeps the per-boundary method call,
        so the fast path can never change a decision.
        """
        if budget <= 0.0 or not getattr(self.policy, "threshold_is_exact", False):
            return None
        try:
            return self.policy.work_threshold(budget)
        except (ValueError, NotImplementedError):
            return None

    def _expected_work(self, budget: float) -> Optional[float]:
        expected = getattr(self.policy, "expected_work", None)
        if expected is None or budget <= 0.0:
            return None
        try:
            return expected(budget)
        except (ValueError, NotImplementedError):
            return None

    # -- campaigns -------------------------------------------------------

    def run_campaign(
        self, R: float, *, max_reservations: int = 1000
    ) -> CampaignOutcome:
        """Book reservations until the converged solution is durably
        checkpointed (or the budget runs out)."""
        max_reservations = check_integer(max_reservations, "max_reservations", minimum=1)
        campaign = CampaignOutcome()
        while len(campaign.reservations) < max_reservations:
            outcome = self.run_reservation(R)
            campaign.reservations.append(outcome)
            if outcome.converged and outcome.solution_saved:
                break
        campaign.converged = self.app.converged
        campaign.solution_saved = bool(
            campaign.reservations and campaign.reservations[-1].solution_saved
        )
        campaign.final_iteration = self.app.iteration_count
        campaign.final_residual = float(self.app.residual)
        return campaign
