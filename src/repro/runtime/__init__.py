"""Crash-safe execution runtime: durable checkpoints and recovery.

The paper's premise is that only a checkpoint that *completes* before
the reservation ends saves any work. This package makes that premise
executable against real applications and a crashing world:

* :mod:`repro.runtime.atomic` — the atomic-write + CRC-envelope
  primitives (tmp + fsync + rename, versioned checksummed envelopes,
  stale-temp sweeping) shared with the service's policy cache;
* :mod:`repro.runtime.store` — the :class:`CheckpointStore` contract
  and its two implementations: in-memory (simulation-grade) and
  durable on-disk generations with quarantine and valid-generation
  fallback;
* :mod:`repro.runtime.runner` — :class:`ReservationRunner`: drives any
  :class:`~repro.workflows.checkpointable.IterativeApplication` under a
  reservation budget with policy/advisor-driven checkpoint decisions,
  deadline-aware checkpoint abort, and multi-reservation resume;
* :mod:`repro.runtime.faults` — seeded process-level fault injection
  (simulated crashes at every write stage, torn files, bit flips,
  manifest corruption, disk-full) backing the crash-recovery harness.

See ``docs/recovery.md`` for the failure-semantics matrix.
"""

from .atomic import (
    EnvelopeCorruptionError,
    EnvelopeError,
    EnvelopeFormatError,
    atomic_write_bytes,
    atomic_write_json,
    sweep_stale_tmp,
)
from .faults import (
    FAULT_KINDS,
    FaultInjector,
    SimulatedCrash,
    StrikeProcess,
    StrikeSchedule,
)
from .runner import (
    AdvisorPolicy,
    CampaignOutcome,
    ReservationOutcome,
    ReservationRunner,
    estimate_checkpoint_duration,
)
from .store import (
    CheckpointCorruptionError,
    CheckpointError,
    CheckpointRecord,
    CheckpointStore,
    DurableCheckpointStore,
    InMemoryCheckpointStore,
    NoCheckpointError,
)

__all__ = [
    "AdvisorPolicy",
    "CampaignOutcome",
    "CheckpointCorruptionError",
    "CheckpointError",
    "CheckpointRecord",
    "CheckpointStore",
    "DurableCheckpointStore",
    "EnvelopeCorruptionError",
    "EnvelopeError",
    "EnvelopeFormatError",
    "FAULT_KINDS",
    "FaultInjector",
    "InMemoryCheckpointStore",
    "NoCheckpointError",
    "ReservationOutcome",
    "ReservationRunner",
    "SimulatedCrash",
    "StrikeProcess",
    "StrikeSchedule",
    "atomic_write_bytes",
    "atomic_write_json",
    "estimate_checkpoint_duration",
    "sweep_stale_tmp",
]
