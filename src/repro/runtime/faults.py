"""Process-level fault injection for the durable checkpoint path.

PR 2's :class:`~repro.service.chaos.ChaosProxy` attacks the *network*
between client and advisor; this module attacks the *execution and
storage* layer underneath a checkpoint — the part of the system the
paper's model actually charges for. Three fault families:

* **Crash faults** — :class:`SimulatedCrash` raised from a hook at a
  chosen stage of the atomic-write protocol
  (:data:`repro.runtime.atomic.WRITE_STAGES`), modelling process death
  at that exact interleaving; the real-SIGKILL equivalent lives in the
  subprocess test harness (``tests/runtime/test_faults.py``).
* **Storage faults** — torn files (truncation), bit flips, corrupt or
  deleted manifests, applied directly to a
  :class:`~repro.runtime.store.DurableCheckpointStore` directory.
* **Resource faults** — ``OSError(ENOSPC)`` (disk full) raised from the
  same write-stage hook, exercising the error path rather than the
  crash path.

Everything is seeded: :meth:`FaultInjector.random_fault` draws from the
full matrix deterministically, so a failing fault sequence replays
bit-for-bit from its seed.
"""

from __future__ import annotations

import errno
import os
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np
from numpy.typing import NDArray

from .._validation import check_nonnegative, check_positive
from ..core.failures import PredictionWindow, WindowPredictor
from .atomic import WRITE_STAGES

if TYPE_CHECKING:  # pragma: no cover
    from ..workflows.checkpointable import IterativeApplication
    from .store import DurableCheckpointStore

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "SimulatedCrash",
    "StrikeProcess",
    "StrikeSchedule",
]


class SimulatedCrash(BaseException):
    """The process "died" at this point.

    Deliberately a ``BaseException``: production code that swallows
    ``Exception`` (or ``OSError``) must *not* be able to swallow a
    simulated death, exactly as it could not swallow a SIGKILL. Only
    the fault harness catches it.
    """

    def __init__(self, stage: str) -> None:
        super().__init__(f"simulated crash at stage {stage!r}")
        self.stage = stage


#: The injectable fault matrix (see :meth:`FaultInjector.random_fault`).
FAULT_KINDS = (
    "crash",       # SimulatedCrash at a random atomic-write stage
    "torn",        # truncate the newest generation file
    "bitflip",     # flip bytes inside the newest generation file
    "manifest",    # corrupt the manifest in place
    "manifest-gone",  # delete the manifest outright
    "disk-full",   # ENOSPC at a random atomic-write stage
)


class FaultInjector:
    """Seeded source of storage/crash faults against a durable store.

    Parameters
    ----------
    seed:
        Seed for every random choice (stage, offsets, byte values).

    Attributes
    ----------
    injected:
        Count of faults actually applied.
    log:
        ``(kind, detail)`` tuples, in order — the harness dumps this
        into the recovery-log artifact so CI failures are replayable.
    """

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)
        self.injected = 0
        self.log: list[tuple[str, str]] = []

    def _note(self, kind: str, detail: str) -> None:
        self.injected += 1
        self.log.append((kind, detail))

    # -- hook-based faults (crash / disk-full) ---------------------------

    def crash_hook(self, stage: str | None = None) -> Callable[[str], None]:
        """A fault hook raising :class:`SimulatedCrash` at ``stage``
        (random write stage when ``None``). Fires once."""
        chosen = stage or self.rng.choice(WRITE_STAGES)
        fired = [False]

        def hook(at: str) -> None:
            if at == chosen and not fired[0]:
                fired[0] = True
                self._note("crash", f"stage={chosen}")
                raise SimulatedCrash(chosen)

        return hook

    def disk_full_hook(self, stage: str | None = None) -> Callable[[str], None]:
        """A fault hook raising ``ENOSPC`` at ``stage`` (random when
        ``None``). Fires once; subsequent writes succeed, modelling a
        monitor freeing space."""
        chosen = stage or self.rng.choice(WRITE_STAGES[:3])
        fired = [False]

        def hook(at: str) -> None:
            if at == chosen and not fired[0]:
                fired[0] = True
                self._note("disk-full", f"stage={chosen}")
                raise OSError(errno.ENOSPC, os.strerror(errno.ENOSPC))

        return hook

    # -- file-based faults (applied after the fact) ----------------------

    def _newest_generation_path(self, store: "DurableCheckpointStore") -> str | None:
        numbers = store._scan_generation_numbers()
        return store._gen_path(numbers[-1]) if numbers else None

    def truncate_latest(self, store: "DurableCheckpointStore") -> bool:
        """Tear the newest generation file (keep a seeded prefix)."""
        path = self._newest_generation_path(store)
        if path is None:
            return False
        size = os.path.getsize(path)
        keep = self.rng.randrange(0, max(size, 1))
        # Fault injection corrupts store files *on purpose*; routing it
        # through repro.runtime.atomic would defeat the test.
        with open(path, "r+b") as fh:  # lint: allow[REP104]
            fh.truncate(keep)
        self._note("torn", f"{os.path.basename(path)} {size}->{keep}B")
        return True

    def flip_bits(self, store: "DurableCheckpointStore", *, count: int = 4) -> bool:
        """XOR ``count`` seeded bytes of the newest generation file."""
        path = self._newest_generation_path(store)
        if path is None:
            return False
        size = os.path.getsize(path)
        if size == 0:
            return False
        # Deliberate in-place corruption of a committed generation file.
        with open(path, "r+b") as fh:  # lint: allow[REP104]
            for _ in range(count):
                offset = self.rng.randrange(size)
                fh.seek(offset)
                byte = fh.read(1)
                fh.seek(offset)
                fh.write(bytes([byte[0] ^ (1 << self.rng.randrange(8))]))
        self._note("bitflip", f"{os.path.basename(path)} x{count}")
        return True

    def corrupt_manifest(self, store: "DurableCheckpointStore") -> bool:
        """Overwrite the manifest with seeded garbage."""
        path = store._manifest_path
        garbage = bytes(self.rng.randrange(256) for _ in range(64))
        # Deliberate manifest clobber — the recovery path under test
        # must survive exactly this non-atomic overwrite.
        with open(path, "wb") as fh:  # lint: allow[REP104]
            fh.write(garbage)
        self._note("manifest", "overwritten with garbage")
        return True

    def delete_manifest(self, store: "DurableCheckpointStore") -> bool:
        """Remove the manifest (crash between gen write and index write)."""
        try:
            os.unlink(store._manifest_path)
        except OSError:
            return False
        self._note("manifest-gone", "unlinked")
        return True

    # -- strike processes -------------------------------------------------

    def strike_process(
        self, rate: float, *, predictor: "WindowPredictor | None" = None
    ) -> "StrikeProcess":
        """A :class:`StrikeProcess` seeded from this injector's stream,
        so strike campaigns join the replayable fault matrix."""
        return StrikeProcess(
            rate, predictor=predictor, seed=self.rng.randrange(2**32)
        )

    # -- matrix draw -----------------------------------------------------

    def random_fault_kind(self) -> str:
        """Seeded draw from :data:`FAULT_KINDS`."""
        return self.rng.choice(FAULT_KINDS)

    def apply_storage_fault(self, store: "DurableCheckpointStore", kind: str) -> bool:
        """Apply a file-based fault by name; returns whether anything
        was damaged (``False`` e.g. when no generation exists yet)."""
        if kind == "torn":
            return self.truncate_latest(store)
        if kind == "bitflip":
            return self.flip_bits(store)
        if kind == "manifest":
            return self.corrupt_manifest(store)
        if kind == "manifest-gone":
            return self.delete_manifest(store)
        raise ValueError(f"not a storage fault kind: {kind!r}")


# ---------------------------------------------------------------------------
# Mid-reservation strikes (exponential fail-stop errors, PR 9)
# ---------------------------------------------------------------------------


@dataclass
class StrikeSchedule:
    """One reservation's pre-drawn strike times and prediction windows.

    Times are relative to the reservation start (virtual clock). The
    runner consults :meth:`next_strike` before every task / checkpoint
    and :meth:`in_window` at every decision boundary.
    """

    strikes: NDArray[np.float64]
    windows: list[PredictionWindow] = field(default_factory=list)

    def next_strike(self, t: float) -> Optional[float]:
        """First strike strictly after ``t``, or ``None``."""
        idx = int(np.searchsorted(self.strikes, t, side="right"))
        if idx >= self.strikes.size:
            return None
        return float(self.strikes[idx])

    def in_window(self, t: float) -> bool:
        """Whether any prediction window covers time ``t``."""
        return any(w.contains(t) for w in self.windows)


class StrikeProcess:
    """Seeded exponential-rate strike source for the reservation runner.

    Each :meth:`schedule` call draws one reservation's homogeneous
    Poisson(``rate``) strike times and — with a
    :class:`~repro.core.failures.WindowPredictor` — the matching
    true/false-positive window stream, both from streams owned by this
    object, so a campaign of reservations is replayable from the seed.
    """

    def __init__(
        self,
        rate: float,
        *,
        predictor: Optional[WindowPredictor] = None,
        seed: int = 0,
    ) -> None:
        self.rate = check_nonnegative(rate, "rate")
        self.predictor = predictor
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._predictor_rng = predictor.stream() if predictor is not None else None

    def schedule(self, R: float) -> StrikeSchedule:
        """Draw the strike times (and windows) for one reservation."""
        R = check_positive(R, "R")
        if self.rate == 0.0:
            strikes = np.array([])
        else:
            count = int(self._rng.poisson(self.rate * R))
            strikes = np.sort(self._rng.uniform(0.0, R, count))
        windows: list[PredictionWindow] = []
        if self.predictor is not None:
            windows = self.predictor.windows(
                strikes, R, self.rate, rng=self._predictor_rng
            )
        return StrikeSchedule(strikes=strikes, windows=windows)
