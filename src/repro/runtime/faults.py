"""Process-level fault injection for the durable checkpoint path.

PR 2's :class:`~repro.service.chaos.ChaosProxy` attacks the *network*
between client and advisor; this module attacks the *execution and
storage* layer underneath a checkpoint — the part of the system the
paper's model actually charges for. Three fault families:

* **Crash faults** — :class:`SimulatedCrash` raised from a hook at a
  chosen stage of the atomic-write protocol
  (:data:`repro.runtime.atomic.WRITE_STAGES`), modelling process death
  at that exact interleaving; the real-SIGKILL equivalent lives in the
  subprocess test harness (``tests/runtime/test_faults.py``).
* **Storage faults** — torn files (truncation), bit flips, corrupt or
  deleted manifests, applied directly to a
  :class:`~repro.runtime.store.DurableCheckpointStore` directory.
* **Resource faults** — ``OSError(ENOSPC)`` (disk full) raised from the
  same write-stage hook, exercising the error path rather than the
  crash path.

Everything is seeded: :meth:`FaultInjector.random_fault` draws from the
full matrix deterministically, so a failing fault sequence replays
bit-for-bit from its seed.
"""

from __future__ import annotations

import errno
import os
import random
from typing import TYPE_CHECKING, Callable

from .atomic import WRITE_STAGES

if TYPE_CHECKING:  # pragma: no cover
    from ..workflows.checkpointable import IterativeApplication
    from .store import DurableCheckpointStore

__all__ = ["FAULT_KINDS", "FaultInjector", "SimulatedCrash"]


class SimulatedCrash(BaseException):
    """The process "died" at this point.

    Deliberately a ``BaseException``: production code that swallows
    ``Exception`` (or ``OSError``) must *not* be able to swallow a
    simulated death, exactly as it could not swallow a SIGKILL. Only
    the fault harness catches it.
    """

    def __init__(self, stage: str) -> None:
        super().__init__(f"simulated crash at stage {stage!r}")
        self.stage = stage


#: The injectable fault matrix (see :meth:`FaultInjector.random_fault`).
FAULT_KINDS = (
    "crash",       # SimulatedCrash at a random atomic-write stage
    "torn",        # truncate the newest generation file
    "bitflip",     # flip bytes inside the newest generation file
    "manifest",    # corrupt the manifest in place
    "manifest-gone",  # delete the manifest outright
    "disk-full",   # ENOSPC at a random atomic-write stage
)


class FaultInjector:
    """Seeded source of storage/crash faults against a durable store.

    Parameters
    ----------
    seed:
        Seed for every random choice (stage, offsets, byte values).

    Attributes
    ----------
    injected:
        Count of faults actually applied.
    log:
        ``(kind, detail)`` tuples, in order — the harness dumps this
        into the recovery-log artifact so CI failures are replayable.
    """

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)
        self.injected = 0
        self.log: list[tuple[str, str]] = []

    def _note(self, kind: str, detail: str) -> None:
        self.injected += 1
        self.log.append((kind, detail))

    # -- hook-based faults (crash / disk-full) ---------------------------

    def crash_hook(self, stage: str | None = None) -> Callable[[str], None]:
        """A fault hook raising :class:`SimulatedCrash` at ``stage``
        (random write stage when ``None``). Fires once."""
        chosen = stage or self.rng.choice(WRITE_STAGES)
        fired = [False]

        def hook(at: str) -> None:
            if at == chosen and not fired[0]:
                fired[0] = True
                self._note("crash", f"stage={chosen}")
                raise SimulatedCrash(chosen)

        return hook

    def disk_full_hook(self, stage: str | None = None) -> Callable[[str], None]:
        """A fault hook raising ``ENOSPC`` at ``stage`` (random when
        ``None``). Fires once; subsequent writes succeed, modelling a
        monitor freeing space."""
        chosen = stage or self.rng.choice(WRITE_STAGES[:3])
        fired = [False]

        def hook(at: str) -> None:
            if at == chosen and not fired[0]:
                fired[0] = True
                self._note("disk-full", f"stage={chosen}")
                raise OSError(errno.ENOSPC, os.strerror(errno.ENOSPC))

        return hook

    # -- file-based faults (applied after the fact) ----------------------

    def _newest_generation_path(self, store: "DurableCheckpointStore") -> str | None:
        numbers = store._scan_generation_numbers()
        return store._gen_path(numbers[-1]) if numbers else None

    def truncate_latest(self, store: "DurableCheckpointStore") -> bool:
        """Tear the newest generation file (keep a seeded prefix)."""
        path = self._newest_generation_path(store)
        if path is None:
            return False
        size = os.path.getsize(path)
        keep = self.rng.randrange(0, max(size, 1))
        with open(path, "r+b") as fh:
            fh.truncate(keep)
        self._note("torn", f"{os.path.basename(path)} {size}->{keep}B")
        return True

    def flip_bits(self, store: "DurableCheckpointStore", *, count: int = 4) -> bool:
        """XOR ``count`` seeded bytes of the newest generation file."""
        path = self._newest_generation_path(store)
        if path is None:
            return False
        size = os.path.getsize(path)
        if size == 0:
            return False
        with open(path, "r+b") as fh:
            for _ in range(count):
                offset = self.rng.randrange(size)
                fh.seek(offset)
                byte = fh.read(1)
                fh.seek(offset)
                fh.write(bytes([byte[0] ^ (1 << self.rng.randrange(8))]))
        self._note("bitflip", f"{os.path.basename(path)} x{count}")
        return True

    def corrupt_manifest(self, store: "DurableCheckpointStore") -> bool:
        """Overwrite the manifest with seeded garbage."""
        path = store._manifest_path
        garbage = bytes(self.rng.randrange(256) for _ in range(64))
        with open(path, "wb") as fh:
            fh.write(garbage)
        self._note("manifest", "overwritten with garbage")
        return True

    def delete_manifest(self, store: "DurableCheckpointStore") -> bool:
        """Remove the manifest (crash between gen write and index write)."""
        try:
            os.unlink(store._manifest_path)
        except OSError:
            return False
        self._note("manifest-gone", "unlinked")
        return True

    # -- matrix draw -----------------------------------------------------

    def random_fault_kind(self) -> str:
        """Seeded draw from :data:`FAULT_KINDS`."""
        return self.rng.choice(FAULT_KINDS)

    def apply_storage_fault(self, store: "DurableCheckpointStore", kind: str) -> bool:
        """Apply a file-based fault by name; returns whether anything
        was damaged (``False`` e.g. when no generation exists yet)."""
        if kind == "torn":
            return self.truncate_latest(store)
        if kind == "bitflip":
            return self.flip_bits(store)
        if kind == "manifest":
            return self.corrupt_manifest(store)
        if kind == "manifest-gone":
            return self.delete_manifest(store)
        raise ValueError(f"not a storage fault kind: {kind!r}")
