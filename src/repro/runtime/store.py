"""Checkpoint stores: the durable half of the paper's model.

The paper's entire objective — "maximize the expected work *saved* at
the end of the reservation" — presumes that a checkpoint which
*completes* survives anything that happens afterwards, and that one
which does *not* complete contributes nothing. This module supplies
both halves of that contract as an explicit store interface:

* :class:`CheckpointStore` — the abstract contract: numbered
  *generations*, validation on recovery, quarantine of invalid
  snapshots, fallback to the newest valid one.
* :class:`InMemoryCheckpointStore` — the process-local implementation
  (state evaporates with the process) used by simulations and examples.
* :class:`DurableCheckpointStore` — on-disk generations written with
  the full atomic protocol (:mod:`repro.runtime.atomic`): tmp + fsync +
  rename per snapshot, a CRC-checksummed manifest, and recovery that
  *never trusts* a snapshot it has not just validated.

Invariant (checked by the fault-injection harness): **after any crash,
recovery lands on a valid checkpoint and loses at most the work since
the last completed one.**

On-disk layout of a :class:`DurableCheckpointStore` directory::

    gen-00000007.ckpt      # newest generation
    gen-00000006.ckpt      # previous generations (kept up to `keep`)
    MANIFEST.json          # enveloped index (a hint, not an authority)
    gen-00000005.ckpt.corrupt   # quarantined torn/bit-flipped snapshot

Each ``.ckpt`` file is ``MAGIC\\n`` + one JSON header line (generation,
iteration, residual, payload length and CRC32) + the raw payload bytes
(the application's :meth:`serialize_state` output). Torn writes fail
the length check; bit flips fail the CRC; both are quarantined with a
``.corrupt`` suffix and recovery falls back to the next-newest valid
generation. The manifest is only an index: if it is missing, stale or
corrupt, it is rebuilt by scanning the generation files, so corrupting
it can never lose a valid snapshot.
"""

from __future__ import annotations

import abc
import json
import logging
import os
import re
import time
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from ..obs.metrics import global_registry
from . import atomic

if TYPE_CHECKING:  # pragma: no cover
    from ..workflows.checkpointable import IterativeApplication

__all__ = [
    "CheckpointCorruptionError",
    "CheckpointError",
    "CheckpointRecord",
    "CheckpointStore",
    "DurableCheckpointStore",
    "InMemoryCheckpointStore",
    "NoCheckpointError",
]

log = logging.getLogger("repro.runtime.store")

#: First line of every generation file; the trailing format digit is the
#: layout version — bump it and old files are quarantined as foreign.
MAGIC = b"REPROCKPT1"

_MANIFEST_NAME = "MANIFEST.json"
_MANIFEST_FORMAT = 1
_GEN_RE = re.compile(r"^gen-(\d{8})\.ckpt$")
_CORRUPT_GEN_RE = re.compile(r"^gen-(\d{8})\.ckpt\.corrupt$")


class CheckpointError(RuntimeError):
    """Base class for store failures."""


class NoCheckpointError(CheckpointError):
    """Recovery was asked for but no valid snapshot exists."""


class CheckpointCorruptionError(CheckpointError):
    """A specific snapshot failed validation (torn write, bit flip,
    foreign layout). Carried in logs; recovery falls back instead of
    surfacing this unless *every* generation is invalid."""


@dataclass(frozen=True)
class CheckpointRecord:
    """Metadata of one completed checkpoint generation."""

    generation: int
    iteration: int
    residual: float
    payload_size: int

    def to_dict(self) -> dict:
        return {
            "generation": self.generation,
            "iteration": self.iteration,
            "residual": self.residual,
            "payload_size": self.payload_size,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CheckpointRecord":
        return cls(
            generation=int(data["generation"]),
            iteration=int(data["iteration"]),
            residual=float(data["residual"]),
            payload_size=int(data["payload_size"]),
        )


class CheckpointStore(abc.ABC):
    """Abstract store contract shared by the in-memory and durable
    implementations, so :class:`repro.runtime.runner.ReservationRunner`
    (and any other driver) is store-agnostic.

    Counters (``writes``, ``recoveries``, ``quarantined``) are plain
    attributes so tests and metrics exporters can read them cheaply.
    """

    def __init__(self) -> None:
        self.writes: int = 0
        self.recoveries: int = 0
        self.quarantined: int = 0

    # -- writing ---------------------------------------------------------

    @abc.abstractmethod
    def write(self, app: "IterativeApplication") -> CheckpointRecord:
        """Snapshot ``app`` as a new generation; returns its record."""

    @abc.abstractmethod
    def write_torn(self, app: "IterativeApplication") -> None:
        """Record a deliberately *invalid* (torn) snapshot — what a crash
        mid-checkpoint leaves behind. Recovery must skip it. Used by the
        runner to model checkpoints that ran past the reservation end,
        and by the fault harness."""

    # -- reading ---------------------------------------------------------

    @abc.abstractmethod
    def generations(self) -> list[CheckpointRecord]:
        """Records of all retained generations, oldest first. Purely
        informational: recovery re-validates payloads regardless."""

    @abc.abstractmethod
    def load_generation(self, generation: int) -> tuple[CheckpointRecord, bytes]:
        """Validated record and payload of one *specific* generation,
        without touching any application.

        This is the primitive consistent-cut recovery needs
        (:mod:`repro.workflows.coupled`): a workflow manifest binds one
        generation per component, and every member must be validated
        *before* any component is mutated — restoring the newest valid
        generation (:meth:`recover`'s job) would silently break the cut.

        Raises :class:`NoCheckpointError` when the generation does not
        exist (or was already quarantined) and
        :class:`CheckpointCorruptionError` — after quarantining the
        snapshot — when it exists but fails validation.
        """

    @abc.abstractmethod
    def recover(
        self, app: "IterativeApplication", *, generation: Optional[int] = None
    ) -> CheckpointRecord:
        """Restore ``app`` from the newest *valid* generation.

        Invalid generations encountered on the way are quarantined (and
        counted), never silently trusted. Raises
        :class:`NoCheckpointError` when no valid snapshot exists.

        With ``generation`` pinned, restores exactly that generation
        (no fallback): missing raises :class:`NoCheckpointError`,
        invalid is quarantined and raises
        :class:`CheckpointCorruptionError` — the strict semantics
        consistent-cut recovery relies on.
        """

    # -- conveniences ----------------------------------------------------

    def latest(self) -> Optional[CheckpointRecord]:
        """Record of the newest retained generation, or ``None``."""
        gens = self.generations()
        return gens[-1] if gens else None

    @property
    def has_checkpoint(self) -> bool:
        """Whether any snapshot has been written (validity not implied)."""
        return self.latest() is not None

    @property
    def checkpointed_iteration(self) -> int:
        """Iteration count captured by the newest snapshot (0 if none)."""
        rec = self.latest()
        return rec.iteration if rec is not None else 0


def _payload_record(
    generation: int, app: "IterativeApplication", payload: bytes
) -> CheckpointRecord:
    return CheckpointRecord(
        generation=generation,
        iteration=app.iteration_count,
        residual=float(app.residual),
        payload_size=len(payload),
    )


class InMemoryCheckpointStore(CheckpointStore):
    """Process-local store with the same generation/validation semantics
    as :class:`DurableCheckpointStore` — and the same blind spot the
    paper models: everything evaporates with the process.

    Each generation keeps its payload plus a CRC32; :meth:`recover`
    validates and falls back exactly like the durable store, so the
    interface-conformance suite runs unchanged against both.
    """

    def __init__(self, *, keep: int = 3) -> None:
        super().__init__()
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.keep = keep
        #: generation -> (payload, crc32, record); insertion-ordered.
        self._generations: dict[int, tuple[bytes, int, CheckpointRecord]] = {}
        self._next_generation = 1

    def write(self, app: "IterativeApplication") -> CheckpointRecord:
        payload = app.serialize_state()
        record = _payload_record(self._next_generation, app, payload)
        self._generations[record.generation] = (payload, zlib.crc32(payload), record)
        self._next_generation += 1
        self.writes += 1
        self._prune()
        return record

    def write_torn(self, app: "IterativeApplication") -> None:
        payload = app.serialize_state()
        record = _payload_record(self._next_generation, app, payload)
        # Truncated payload with the *full-length* CRC: exactly the
        # signature of a crash mid-write.
        torn = payload[: max(1, len(payload) // 2)]
        self._generations[record.generation] = (torn, zlib.crc32(payload), record)
        self._next_generation += 1
        self._prune()

    def _prune(self) -> None:
        while len(self._generations) > self.keep:
            self._generations.pop(next(iter(self._generations)))

    def generations(self) -> list[CheckpointRecord]:
        return [rec for _, _, rec in self._generations.values()]

    def load_generation(self, generation: int) -> tuple[CheckpointRecord, bytes]:
        if generation not in self._generations:
            raise NoCheckpointError(f"generation {generation} does not exist")
        payload, crc, record = self._generations[generation]
        if len(payload) != record.payload_size or zlib.crc32(payload) != crc:
            del self._generations[generation]
            self.quarantined += 1
            global_registry().incr("runtime.checkpoint.quarantined")
            log.warning("quarantined invalid in-memory generation %d", generation)
            raise CheckpointCorruptionError(
                f"generation {generation} failed validation"
            )
        return record, payload

    def recover(
        self, app: "IterativeApplication", *, generation: Optional[int] = None
    ) -> CheckpointRecord:
        if generation is not None:
            record, payload = self.load_generation(generation)
            app.restore_state(payload)
            self.recoveries += 1
            return record
        if not self._generations:
            raise NoCheckpointError("no checkpoint to recover from")
        for candidate in sorted(self._generations, reverse=True):
            payload, crc, record = self._generations[candidate]
            if len(payload) != record.payload_size or zlib.crc32(payload) != crc:
                del self._generations[candidate]
                self.quarantined += 1
                global_registry().incr("runtime.checkpoint.quarantined")
                log.warning(
                    "quarantined invalid in-memory generation %d", candidate
                )
                continue
            app.restore_state(payload)
            self.recoveries += 1
            return record
        raise NoCheckpointError("no valid checkpoint to recover from")

    # -- test hook -------------------------------------------------------

    def corrupt_generation(self, generation: int, *, flip: int = 1) -> None:
        """Flip ``flip`` byte(s) of a stored payload (fault injection)."""
        payload, crc, record = self._generations[generation]
        mutated = bytearray(payload)
        for i in range(min(flip, len(mutated))):
            mutated[i] ^= 0xFF
        self._generations[generation] = (bytes(mutated), crc, record)


class DurableCheckpointStore(CheckpointStore):
    """On-disk checkpoint store surviving process death.

    Parameters
    ----------
    path:
        Directory for the generation files and manifest (created if
        missing). One store instance per directory.
    keep:
        Number of most-recent generations retained; older files are
        pruned after each successful write. Keeping more than one is
        what makes fallback-after-corruption possible.
    fault_hook:
        Optional :data:`repro.runtime.atomic.FaultHook` threaded into
        every atomic write — the seam the fault harness uses to crash
        the protocol at any stage. ``None`` in production.
    """

    def __init__(
        self,
        path: str,
        *,
        keep: int = 3,
        fault_hook: Callable[[str], None] | None = None,
    ) -> None:
        super().__init__()
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.path = path
        self.keep = keep
        self.fault_hook = fault_hook
        os.makedirs(path, exist_ok=True)
        swept = atomic.sweep_stale_tmp(path)
        if swept:
            global_registry().incr("runtime.checkpoint.stale_tmp_swept", swept)
        self._manifest: dict[int, CheckpointRecord] = {}
        self._load_manifest()

    # -- paths -----------------------------------------------------------

    def _gen_path(self, generation: int) -> str:
        return os.path.join(self.path, f"gen-{generation:08d}.ckpt")

    @property
    def _manifest_path(self) -> str:
        return os.path.join(self.path, _MANIFEST_NAME)

    def _scan_generation_numbers(self) -> list[int]:
        """Generation numbers present on disk (the ground truth)."""
        try:
            names = os.listdir(self.path)
        except OSError:
            return []
        out = []
        for name in names:
            m = _GEN_RE.match(name)
            if m:
                out.append(int(m.group(1)))
        return sorted(out)

    # -- manifest --------------------------------------------------------

    def _load_manifest(self) -> None:
        """Load the index, falling back to a directory scan.

        The manifest is an optimization, never an authority: a missing,
        stale or corrupt manifest triggers a rebuild from the generation
        files themselves, so no manifest failure can hide a valid
        snapshot or resurrect a pruned one.
        """
        records: dict[int, CheckpointRecord] = {}
        try:
            payload = atomic.read_json_envelope(
                self._manifest_path, fmt=_MANIFEST_FORMAT, payload_key="manifest"
            )
            records = {
                int(k): CheckpointRecord.from_dict(v)
                for k, v in payload["generations"].items()
            }
        except OSError:
            pass  # first run, or manifest deleted: rebuild below
        except (atomic.EnvelopeError, KeyError, TypeError, ValueError):
            self.quarantined += 1
            global_registry().incr("runtime.checkpoint.quarantined")
            log.warning("manifest %s invalid; rebuilding from scan", self._manifest_path)
        on_disk = self._scan_generation_numbers()
        # Rebuild records for files the manifest does not know (crash
        # after gen rename but before the manifest write).
        for generation in on_disk:
            if generation not in records:
                rec = self._validate_generation(generation)
                if rec is not None:
                    records[generation] = rec
        # Forget records whose files are gone (pruned or quarantined).
        self._manifest = {g: records[g] for g in sorted(records) if g in set(on_disk)}

    def _write_manifest(self) -> None:
        payload = {
            "generations": {
                str(g): rec.to_dict() for g, rec in sorted(self._manifest.items())
            },
            # True epoch timestamp ("manifest written at"), not a
            # duration — operators correlate it with system logs.
            "updated": time.time(),  # lint: allow[REP004]
        }
        atomic.atomic_write_json(
            self._manifest_path,
            payload,
            fmt=_MANIFEST_FORMAT,
            payload_key="manifest",
            fault_hook=self.fault_hook,
        )

    # -- generation file format ------------------------------------------

    @staticmethod
    def _encode(record: CheckpointRecord, payload: bytes) -> bytes:
        header = {
            **record.to_dict(),
            "payload_crc32": zlib.crc32(payload),
        }
        return b"%s\n%s\n%s" % (
            MAGIC,
            json.dumps(header, sort_keys=True, allow_nan=False).encode("utf-8"),
            payload,
        )

    @staticmethod
    def _decode(blob: bytes) -> tuple[CheckpointRecord, bytes]:
        """Parse and fully validate one generation file.

        Raises :class:`CheckpointCorruptionError` describing exactly
        which check failed (magic, header, length, CRC) — the message
        recovery logs carry into the quarantine event.
        """
        magic, sep, rest = blob.partition(b"\n")
        if magic != MAGIC or not sep:
            raise CheckpointCorruptionError("bad magic (foreign or torn file)")
        header_line, sep, payload = rest.partition(b"\n")
        if not sep:
            raise CheckpointCorruptionError("truncated before payload")
        try:
            header = json.loads(header_line.decode("utf-8"))
            record = CheckpointRecord.from_dict(header)
            expected_crc = int(header["payload_crc32"])
        except (UnicodeDecodeError, ValueError, KeyError, TypeError) as exc:
            raise CheckpointCorruptionError(f"undecodable header ({exc})") from exc
        if len(payload) != record.payload_size:
            raise CheckpointCorruptionError(
                f"payload length {len(payload)} != recorded {record.payload_size} "
                "(torn write)"
            )
        if zlib.crc32(payload) != expected_crc:
            raise CheckpointCorruptionError("payload CRC32 mismatch (bit flip)")
        return record, payload

    def _validate_generation(self, generation: int) -> Optional[CheckpointRecord]:
        """Record of a generation file if it validates, else ``None``
        (without quarantining — used for manifest rebuilds)."""
        try:
            with open(self._gen_path(generation), "rb") as fh:
                record, _ = self._decode(fh.read())
            return record
        except (OSError, CheckpointCorruptionError):
            return None

    def _quarantine(self, generation: int, reason: str) -> None:
        """Move an invalid generation aside (``.corrupt``), preserving
        the evidence for post-mortem instead of deleting it."""
        gen_path = self._gen_path(generation)
        try:
            # Quarantine, not a durable write: no new content is created,
            # so the atomic tmp+fsync+rename protocol does not apply.
            os.replace(gen_path, f"{gen_path}.corrupt")  # lint: allow[REP003,REP104]
        except OSError:
            pass
        self._manifest.pop(generation, None)
        self.quarantined += 1
        global_registry().incr("runtime.checkpoint.quarantined")
        log.warning(
            "quarantined checkpoint generation %d -> %s.corrupt (%s)",
            generation,
            gen_path,
            reason,
        )

    # -- CheckpointStore interface ---------------------------------------

    def write(self, app: "IterativeApplication") -> CheckpointRecord:
        """Write a new generation with the full atomic protocol.

        Order matters: the generation file is made durable *before* the
        manifest mentions it, and pruning happens *after* — so a crash
        at any point leaves either the old set or the old set plus one
        complete new file, never fewer valid snapshots than before.
        """
        payload = app.serialize_state()
        generation = self._next_generation_number()
        record = _payload_record(generation, app, payload)
        start = time.perf_counter()
        atomic.atomic_write_bytes(
            self._gen_path(generation),
            self._encode(record, payload),
            fault_hook=self.fault_hook,
        )
        self._manifest[generation] = record
        self._prune()
        self._write_manifest()
        elapsed = time.perf_counter() - start
        self.writes += 1
        registry = global_registry()
        registry.incr("runtime.checkpoint.writes")
        registry.observe("runtime.checkpoint.write_seconds", elapsed)
        registry.observe("runtime.checkpoint.payload_bytes", float(len(payload)))
        return record

    def write_torn(self, app: "IterativeApplication") -> None:
        """Leave exactly what a crash mid-checkpoint leaves: a torn
        generation file written *without* the atomic protocol."""
        payload = app.serialize_state()
        generation = self._next_generation_number()
        record = _payload_record(generation, app, payload)
        blob = self._encode(record, payload)
        # Simulating a crash mid-checkpoint *requires* bypassing the
        # atomic protocol: the torn prefix is the fixture.
        with open(self._gen_path(generation), "wb") as fh:  # lint: allow[REP104]
            fh.write(blob[: max(len(blob) - len(payload) // 2, len(MAGIC) + 1)])
        global_registry().incr("runtime.checkpoint.torn_writes")

    def generations(self) -> list[CheckpointRecord]:
        return [self._manifest[g] for g in sorted(self._manifest)]

    def latest(self) -> Optional[CheckpointRecord]:
        # Include unmanifested files (crash before the manifest write):
        # the scan is the ground truth for "has anything been written".
        rec = super().latest()
        if rec is not None:
            return rec
        on_disk = self._scan_generation_numbers()
        if not on_disk:
            return None
        return self._validate_generation(on_disk[-1])

    def load_generation(self, generation: int) -> tuple[CheckpointRecord, bytes]:
        try:
            with open(self._gen_path(generation), "rb") as fh:
                blob = fh.read()
        except OSError as exc:
            raise NoCheckpointError(
                f"generation {generation} does not exist ({exc})"
            ) from exc
        try:
            return self._decode(blob)
        except CheckpointCorruptionError as exc:
            self._quarantine(generation, str(exc))
            raise

    def recover(
        self, app: "IterativeApplication", *, generation: Optional[int] = None
    ) -> CheckpointRecord:
        """Restore from the newest valid generation, quarantining every
        invalid one encountered on the way down."""
        if generation is not None:
            record, payload = self.load_generation(generation)
            app.restore_state(payload)
            self._manifest[generation] = record
            self.recoveries += 1
            global_registry().incr("runtime.recoveries")
            return record
        candidates = sorted(
            set(self._scan_generation_numbers()) | set(self._manifest), reverse=True
        )
        if not candidates:
            raise NoCheckpointError("no checkpoint to recover from")
        for generation in candidates:
            try:
                with open(self._gen_path(generation), "rb") as fh:
                    blob = fh.read()
            except OSError as exc:
                self._manifest.pop(generation, None)
                log.warning("generation %d unreadable (%s); falling back", generation, exc)
                continue
            try:
                record, payload = self._decode(blob)
            except CheckpointCorruptionError as exc:
                self._quarantine(generation, str(exc))
                continue
            app.restore_state(payload)
            self._manifest[generation] = record
            self.recoveries += 1
            global_registry().incr("runtime.recoveries")
            return record
        raise NoCheckpointError("no valid checkpoint to recover from")

    # -- internals -------------------------------------------------------

    def _scan_quarantined_numbers(self) -> list[int]:
        """Generation numbers of quarantined (``.corrupt``) files."""
        try:
            names = os.listdir(self.path)
        except OSError:
            return []
        out = []
        for name in names:
            m = _CORRUPT_GEN_RE.match(name)
            if m:
                out.append(int(m.group(1)))
        return sorted(out)

    def _next_generation_number(self) -> int:
        """One past the newest generation *anywhere* — manifest, disk,
        or quarantine — so a torn leftover is never silently overwritten
        and a quarantined number is never reused across recoveries (a
        workflow cut manifest may still reference it)."""
        on_disk = self._scan_generation_numbers()
        quarantined = self._scan_quarantined_numbers()
        return (
            max(
                max(self._manifest, default=0),
                on_disk[-1] if on_disk else 0,
                quarantined[-1] if quarantined else 0,
            )
            + 1
        )

    def _prune(self) -> None:
        """Drop generations beyond ``keep``, newest retained."""
        doomed = sorted(self._manifest)[: -self.keep]
        for generation in doomed:
            del self._manifest[generation]
            try:
                os.unlink(self._gen_path(generation))
            except OSError:
                pass
