"""Crash-safe file primitives shared by every durable component.

Two things make a write *durable* rather than merely finished:

1. **Atomicity** — readers (including a recovering process) must never
   see a half-written file. The only portable way to get this on POSIX
   is *write to a temp file in the same directory, fsync it, then
   ``os.replace`` over the destination* (rename within a filesystem is
   atomic), followed by an fsync of the directory so the rename itself
   survives power loss.
2. **Verifiability** — a file that *was* torn anyway (crash before the
   rename, bit rot, a copy that went wrong) must be *detectable*. Every
   JSON artifact is wrapped in a versioned envelope carrying the CRC32
   of its canonical serialization, so a reader can distinguish "stale
   layout" (recompute silently) from "corruption" (quarantine loudly).

This module generalizes the PolicyCache v2 persistence envelope into a
helper used by both :class:`repro.service.cache.PolicyCache` and
:class:`repro.runtime.store.DurableCheckpointStore`.

Fault hooks
-----------
``atomic_write_bytes`` accepts a ``fault_hook`` callable invoked with a
stage name at every step of the protocol (see :data:`WRITE_STAGES`).
Production code passes ``None``; the test harness and
:class:`repro.runtime.faults.FaultInjector` pass hooks that raise
:class:`repro.runtime.faults.SimulatedCrash` (process death at that
point) or ``OSError(ENOSPC)`` (disk full) to exercise every interleaving
of the crash matrix without an actual ``kill -9``.
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import zlib
from typing import Callable

__all__ = [
    "EnvelopeCorruptionError",
    "EnvelopeError",
    "EnvelopeFormatError",
    "WRITE_STAGES",
    "atomic_write_bytes",
    "atomic_write_json",
    "canonical_json_bytes",
    "fsync_directory",
    "open_envelope",
    "read_json_envelope",
    "sweep_stale_tmp",
    "tmp_path_for",
    "wrap_envelope",
]

log = logging.getLogger("repro.runtime.atomic")

FaultHook = Callable[[str], None]

#: Stages reported to ``fault_hook``, in protocol order. A crash after
#: ``"replaced"`` leaves the *new* file; any earlier crash leaves the
#: *old* file (or nothing) plus at most a ``*.tmp.*`` leftover that
#: :func:`sweep_stale_tmp` removes on the next startup.
WRITE_STAGES = (
    "tmp-open",      # temp file created, nothing written yet
    "tmp-written",   # payload written, not yet flushed
    "tmp-fsynced",   # payload durable under the temp name
    "replaced",      # os.replace done: new content visible
    "dir-fsynced",   # rename durable: crash cannot roll it back
)


class EnvelopeError(ValueError):
    """Base class for envelope validation failures."""


class EnvelopeFormatError(EnvelopeError):
    """Not an envelope of the expected version (stale or foreign layout).

    Readers should treat this as a silent miss: recompute the artifact
    and overwrite. Nothing was necessarily corrupted.
    """


class EnvelopeCorruptionError(EnvelopeError):
    """A well-formed envelope whose payload fails its CRC32 check.

    Readers should treat this as evidence of a torn or bit-flipped
    write: quarantine the file for post-mortem, never silently trust
    or delete it.
    """


def canonical_json_bytes(payload: dict[str, object]) -> bytes:
    """Canonical JSON bytes of a dict — the CRC32 input.

    Sorted keys and minimal separators make the serialization unique,
    so the checksum is stable across writer processes and versions.
    """
    return json.dumps(
        payload, separators=(",", ":"), sort_keys=True, allow_nan=False
    ).encode("utf-8")


def wrap_envelope(
    payload: dict[str, object], *, fmt: int, payload_key: str = "payload"
) -> dict[str, object]:
    """Wrap ``payload`` in a versioned, CRC32-checksummed envelope."""
    return {
        "persist_format": int(fmt),
        "crc32": zlib.crc32(canonical_json_bytes(payload)),
        payload_key: payload,
    }


def open_envelope(
    data: object, *, fmt: int, payload_key: str = "payload"
) -> dict[str, object]:
    """Validate an envelope and return its payload.

    Raises
    ------
    EnvelopeFormatError
        ``data`` is not a dict, carries a different ``persist_format``,
        or lacks the checksum/payload fields — a stale layout, not
        necessarily damage.
    EnvelopeCorruptionError
        The payload's CRC32 does not match the recorded one.
    """
    if (
        not isinstance(data, dict)
        or data.get("persist_format") != fmt
        or "crc32" not in data
        or not isinstance(data.get(payload_key), dict)
    ):
        raise EnvelopeFormatError(f"not a persist_format={fmt} envelope")
    payload = data[payload_key]
    if zlib.crc32(canonical_json_bytes(payload)) != data["crc32"]:
        raise EnvelopeCorruptionError("CRC32 mismatch (torn or bit-flipped write)")
    return payload


def tmp_path_for(path: str) -> str:
    """Per-process temp name next to ``path`` (same filesystem, so the
    final ``os.replace`` is an atomic rename)."""
    return f"{path}.tmp.{os.getpid()}"


def fsync_directory(directory: str) -> None:
    """Flush a directory's metadata so a completed rename survives power
    loss; best-effort on platforms without directory fds."""
    with contextlib.suppress(OSError, AttributeError):
        dir_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)


def _noop_hook(stage: str) -> None:
    return None


def atomic_write_bytes(
    path: str,
    data: bytes,
    *,
    fsync_dir: bool = True,
    fault_hook: FaultHook | None = None,
) -> None:
    """Durably replace ``path`` with ``data`` (tmp + fsync + rename).

    On any ``OSError`` the temp file is unlinked and the error re-raised
    — the destination is either the complete old content or the
    complete new content, never a mixture. Exceptions raised by
    ``fault_hook`` (simulated crashes) propagate *without* cleanup, by
    design: a dead process cleans nothing.
    """
    hook = fault_hook or _noop_hook
    tmp_path = tmp_path_for(path)
    try:
        with open(tmp_path, "wb") as fh:
            hook("tmp-open")
            fh.write(data)
            hook("tmp-written")
            fh.flush()
            os.fsync(fh.fileno())
        hook("tmp-fsynced")
        os.replace(tmp_path, path)
        hook("replaced")
    except OSError:
        with contextlib.suppress(OSError):
            os.unlink(tmp_path)
        raise
    if fsync_dir:
        fsync_directory(os.path.dirname(path) or ".")
        hook("dir-fsynced")


def atomic_write_json(
    path: str,
    payload: dict[str, object],
    *,
    fmt: int,
    payload_key: str = "payload",
    fault_hook: FaultHook | None = None,
) -> None:
    """Envelope ``payload`` (:func:`wrap_envelope`) and write it atomically."""
    envelope = wrap_envelope(payload, fmt=fmt, payload_key=payload_key)
    atomic_write_bytes(
        path,
        json.dumps(envelope, allow_nan=False).encode("utf-8"),
        fault_hook=fault_hook,
    )


def read_json_envelope(
    path: str, *, fmt: int, payload_key: str = "payload"
) -> dict[str, object]:
    """Read and validate an envelope written by :func:`atomic_write_json`.

    Raises ``OSError`` if unreadable, :class:`EnvelopeFormatError` /
    :class:`EnvelopeCorruptionError` per :func:`open_envelope`; a file
    that is not even JSON raises :class:`EnvelopeCorruptionError` (it
    can only be a torn write — complete writes are always valid JSON).
    """
    with open(path, "rb") as fh:
        raw = fh.read()
    try:
        data = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise EnvelopeCorruptionError(f"not parseable as JSON ({exc})") from exc
    return open_envelope(data, fmt=fmt, payload_key=payload_key)


def sweep_stale_tmp(directory: str, *, marker: str = ".tmp.") -> int:
    """Unlink ``*.tmp.*`` leftovers from processes that crashed mid-write.

    Returns the number of files removed. Safe to call concurrently:
    losing an unlink race is ignored.
    """
    try:
        names = os.listdir(directory)
    except OSError:
        return 0
    removed = 0
    for name in names:
        if marker in name:
            with contextlib.suppress(OSError):
                os.unlink(os.path.join(directory, name))
                removed += 1
                log.info("removed stale temp file %s", name)
    return removed
