"""Vectorized Monte-Carlo simulators for both scenarios.

These simulators are the experimental arm the paper's conclusion calls
for ("an experimental campaign, either via simulations using traces or
through actual application runs"). They draw complete reservation
realizations and measure the work actually saved, validating every
analytical expectation in :mod:`repro.core` and comparing strategies
beyond what the formulas cover.

All hot paths are vectorized across trials (a single NumPy op per task
round); the per-trial Python loop only advances task *indices*, whose
count is the expected number of tasks per reservation (tens), not the
number of trials (millions).

Semantics shared by all workflow simulators:

* task durations accumulate; if the accumulated work passes the
  stopping point the policy checkpoints *at the task boundary*;
* the checkpoint succeeds iff ``W + C <= R``; on success the saved work
  is ``W``, otherwise 0 (the reservation expires mid-checkpoint);
* a reservation that expires mid-task saves 0 as well.
"""

from __future__ import annotations


import numpy as np
from numpy.typing import NDArray

from .._validation import as_generator, check_in_range, check_integer, check_positive
from ..distributions import Distribution, RngLike
from ..core.policies import WorkflowPolicy

__all__ = [
    "simulate_preemptible",
    "simulate_fixed_count",
    "simulate_threshold",
    "simulate_oracle",
    "simulate_policy",
]

#: Hard cap on task rounds, guarding against degenerate task laws
#: (e.g. a law whose samples are almost surely 0).
_MAX_ROUNDS = 100_000


def simulate_preemptible(
    R: float,
    checkpoint_law: Distribution,
    margin: float,
    n_trials: int,
    rng: RngLike = None,
) -> NDArray[np.float64]:
    """Per-trial saved work for Scenario 1 with margin ``X``.

    Draws ``C ~ D_C`` and saves ``R - X`` iff ``C <= X``. The sample
    mean estimates Equation (1)'s ``E(W(X))``.
    """
    R = check_positive(R, "R")
    margin = check_in_range(margin, "margin", 0.0, R)
    n_trials = check_integer(n_trials, "n_trials", minimum=1)
    gen = as_generator(rng)
    C = checkpoint_law.sample(n_trials, gen)
    return np.where(C <= margin, R - margin, 0.0)


def simulate_fixed_count(
    R: float,
    task_law: Distribution,
    checkpoint_law: Distribution,
    n_tasks: int,
    n_trials: int,
    rng: RngLike = None,
) -> NDArray[np.float64]:
    """Per-trial saved work for the static strategy (checkpoint after
    ``n_tasks`` tasks).

    The sample mean estimates Equation (3)'s ``E(n)``. Realizations in
    which the ``n_tasks`` tasks already overrun the reservation save 0,
    and (matching the paper's Normal-law analysis, which integrates the
    negative tail) a negative accumulated work is kept as-is in the
    success test but never produces positive saved work.
    """
    R = check_positive(R, "R")
    n_tasks = check_integer(n_tasks, "n_tasks", minimum=1)
    n_trials = check_integer(n_trials, "n_trials", minimum=1)
    gen = as_generator(rng)
    # Sum n_tasks draws per trial without materializing a huge matrix.
    W = np.zeros(n_trials)
    for _ in range(n_tasks):
        W += task_law.sample(n_trials, gen)
    C = checkpoint_law.sample(n_trials, gen)
    fits = (W <= R) & (W + C <= R)
    return np.where(fits, W, 0.0)


def _accumulate_until(
    task_law: Distribution,
    stop_level: NDArray[np.float64],
    n_trials: int,
    gen: np.random.Generator,
) -> tuple[NDArray[np.float64], NDArray[np.float64], NDArray[np.int64]]:
    """Run tasks until each trial's work reaches its ``stop_level``.

    Returns ``(final_work, previous_work, n_tasks)`` where
    ``previous_work`` is the accumulated work *before* the crossing task
    (needed by the oracle, which would have stopped one task earlier).
    """
    W = np.zeros(n_trials)
    W_prev = np.zeros(n_trials)
    counts = np.zeros(n_trials, dtype=np.int64)
    active = W < stop_level
    rounds = 0
    while np.any(active):
        rounds += 1
        if rounds > _MAX_ROUNDS:
            raise RuntimeError(
                f"task accumulation did not terminate within {_MAX_ROUNDS} rounds; "
                "is the task law degenerate at 0?"
            )
        idx = np.nonzero(active)[0]
        draws = task_law.sample(idx.size, gen)
        W_prev[idx] = W[idx]
        W[idx] += draws
        counts[idx] += 1
        active[idx] = W[idx] < stop_level[idx]
    return W, W_prev, counts


def simulate_threshold(
    R: float,
    task_law: Distribution,
    checkpoint_law: Distribution,
    threshold: float,
    n_trials: int,
    rng: RngLike = None,
    *,
    return_counts: bool = False,
):
    """Per-trial saved work for a work-threshold policy.

    The policy runs tasks until the accumulated work first reaches
    ``threshold`` (the dynamic rule with crossing point ``W_int``, or an
    optimal-stopping threshold), then checkpoints. Task durations of 0
    (possible under Poisson) do not trigger extra decisions — only
    crossing the threshold does, which matches the threshold reading of
    the rule.

    Returns the saved-work array, or ``(saved, task_counts)`` when
    ``return_counts`` is set.
    """
    R = check_positive(R, "R")
    threshold = check_in_range(threshold, "threshold", 0.0, R)
    n_trials = check_integer(n_trials, "n_trials", minimum=1)
    gen = as_generator(rng)
    stop = np.full(n_trials, threshold)
    W, _, counts = _accumulate_until(task_law, stop, n_trials, gen)
    C = checkpoint_law.sample(n_trials, gen)
    fits = (W <= R) & (W + C <= R)
    saved = np.where(fits, W, 0.0)
    if return_counts:
        return saved, counts
    return saved


def simulate_oracle(
    R: float,
    task_law: Distribution,
    checkpoint_law: Distribution,
    n_trials: int,
    rng: RngLike = None,
) -> NDArray[np.float64]:
    """Clairvoyant upper bound: the oracle sees the realized ``C`` and
    every future task duration, and stops at the last boundary that
    still fits.

    For each trial it runs tasks until the work first exceeds ``R - C``
    and saves the work accumulated *before* that task (the largest
    prefix sum ``W_n`` with ``W_n + C <= R``). No implementable policy
    can beat its mean; benchmarks report strategies as a fraction of it.
    """
    R = check_positive(R, "R")
    n_trials = check_integer(n_trials, "n_trials", minimum=1)
    gen = as_generator(rng)
    C = checkpoint_law.sample(n_trials, gen)
    budget = np.maximum(R - C, 0.0)
    # Stop strictly above the budget; floating stop_level + epsilon keeps
    # the loop finite when task draws can be exactly 0 at budget 0.
    W, W_prev, _ = _accumulate_until(task_law, budget + 1e-12, n_trials, gen)
    saved = np.where(W <= budget, W, W_prev)
    return np.where(saved <= budget, saved, 0.0)


def simulate_policy(
    R: float,
    task_law: Distribution,
    checkpoint_law: Distribution,
    policy: WorkflowPolicy,
    n_trials: int,
    rng: RngLike = None,
) -> NDArray[np.float64]:
    """Per-trial saved work for an arbitrary :class:`WorkflowPolicy`.

    Uses the policy's vectorized fast path when it declares one
    (``fixed_task_count`` or ``work_threshold``); otherwise falls back
    to a per-trial loop calling ``should_checkpoint`` at every boundary
    (slow, but exact for any rule).
    """
    R = check_positive(R, "R")
    n_trials = check_integer(n_trials, "n_trials", minimum=1)
    gen = as_generator(rng)
    n_fixed = policy.fixed_task_count(R)
    if n_fixed is not None:
        return simulate_fixed_count(R, task_law, checkpoint_law, n_fixed, n_trials, gen)
    threshold = policy.work_threshold(R)
    if threshold is not None:
        return simulate_threshold(
            R, task_law, checkpoint_law, min(threshold, R), n_trials, gen
        )
    saved = np.empty(n_trials)
    for t in range(n_trials):
        policy.reset(R)
        w = 0.0
        n = 0
        while not policy.should_checkpoint(w, n):
            x = float(task_law.sample(1, gen)[0])
            w += x
            n += 1
            if w > R:
                break
            if n > _MAX_ROUNDS:
                raise RuntimeError("policy never chose to checkpoint")
        C = float(checkpoint_law.sample(1, gen)[0])
        saved[t] = w if (w <= R and w + C <= R) else 0.0
    return saved
