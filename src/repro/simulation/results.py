"""Aggregation of Monte-Carlo outcomes.

Every simulator in :mod:`repro.simulation` returns per-trial saved-work
samples; :class:`SimulationSummary` condenses them into the moments and
confidence intervals that the benchmarks report, and
:func:`compare_policies` lines several strategies up against each other
(the "who wins, by what factor" view the paper's conclusion calls for).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike

__all__ = ["SimulationSummary", "compare_policies", "PolicyComparison"]

#: Two-sided 95% normal quantile.
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class SimulationSummary:
    """Moments of a sample of per-trial saved work.

    Attributes
    ----------
    n_trials:
        Sample size.
    mean, std:
        Sample mean and (ddof=1) standard deviation.
    sem:
        Standard error of the mean.
    ci_low, ci_high:
        95% normal-approximation confidence interval for the mean.
    success_rate:
        Fraction of trials that saved strictly positive work (i.e. the
        checkpoint completed in time).
    """

    n_trials: int
    mean: float
    std: float
    sem: float
    ci_low: float
    ci_high: float
    success_rate: float

    @classmethod
    def from_samples(cls, samples: ArrayLike) -> "SimulationSummary":
        """Summarize an array of per-trial saved-work values."""
        arr = np.asarray(samples, dtype=float).ravel()
        if arr.size == 0:
            raise ValueError("cannot summarize an empty sample")
        n = int(arr.size)
        mean = float(arr.mean())
        std = float(arr.std(ddof=1)) if n > 1 else 0.0
        sem = std / math.sqrt(n) if n > 1 else 0.0
        return cls(
            n_trials=n,
            mean=mean,
            std=std,
            sem=sem,
            ci_low=mean - _Z95 * sem,
            ci_high=mean + _Z95 * sem,
            success_rate=float(np.mean(arr > 0.0)),
        )

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the 95% CI for the mean."""
        return self.ci_low <= value <= self.ci_high

    def summary(self) -> str:
        """One-line human-readable description."""
        return (
            f"mean={self.mean:.4g} +/- {self.sem:.2g} "
            f"(95% CI [{self.ci_low:.4g}, {self.ci_high:.4g}], "
            f"success {100 * self.success_rate:.1f}%, n={self.n_trials})"
        )


@dataclass(frozen=True)
class PolicyComparison:
    """Saved-work summaries for several named policies on one workload."""

    summaries: dict[str, SimulationSummary]

    @property
    def winner(self) -> str:
        """Name of the policy with the highest mean saved work."""
        return max(self.summaries, key=lambda k: self.summaries[k].mean)

    def ratio(self, name: str, baseline: str) -> float:
        """Mean saved work of ``name`` relative to ``baseline``."""
        denom = self.summaries[baseline].mean
        if denom == 0.0:
            return math.inf
        return self.summaries[name].mean / denom

    def table(self) -> str:
        """Fixed-width text table, best policy first."""
        rows = sorted(self.summaries.items(), key=lambda kv: -kv[1].mean)
        width = max(len(name) for name in self.summaries)
        lines = [f"{'policy':<{width}}  {'mean':>10}  {'sem':>8}  {'success%':>8}"]
        for name, s in rows:
            lines.append(
                f"{name:<{width}}  {s.mean:>10.4f}  {s.sem:>8.4f}  "
                f"{100 * s.success_rate:>8.2f}"
            )
        return "\n".join(lines)


def compare_policies(samples_by_policy: dict[str, ArrayLike]) -> PolicyComparison:
    """Build a :class:`PolicyComparison` from per-policy sample arrays."""
    return PolicyComparison(
        summaries={
            name: SimulationSummary.from_samples(samples)
            for name, samples in samples_by_policy.items()
        }
    )
