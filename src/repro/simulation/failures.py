"""Monte-Carlo simulation of reservations with fail-stop errors.

Companion to :mod:`repro.core.failures` (the paper's future-work
extension): exponential errors strike during the reservation; work
since the last completed checkpoint is lost on each strike; a recovery
of fixed length precedes resumed execution.

Two strategies are simulated, both vectorized across trials:

* :func:`simulate_final_only_with_failures` — the paper's single
  end-of-reservation checkpoint;
* :func:`simulate_periodic_with_failures` — checkpoint after every
  ``period`` seconds of new work, final segment included.

Saved work counts everything captured by *completed* checkpoints by the
time the reservation expires.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray

from .._validation import as_generator, check_integer, check_nonnegative, check_positive
from ..core.failures import WindowPredictor
from ..core.policies import FailureAwareDynamicPolicy
from ..distributions import Distribution, RngLike

__all__ = [
    "simulate_final_only_with_failures",
    "simulate_periodic_with_failures",
    "simulate_restart_with_failures",
    "simulate_dynamic_with_failures",
    "DynamicFailureStats",
]

#: Safety bound on simulated segments per reservation.
_MAX_SEGMENTS = 100_000


def simulate_final_only_with_failures(
    R: float,
    checkpoint_law: Distribution,
    margin: float,
    failure_rate: float,
    n_trials: int,
    rng: RngLike = None,
) -> NDArray[np.float64]:
    """Saved work of the single final checkpoint under failures.

    A trial saves ``R - margin`` iff the drawn checkpoint fits
    (``C <= margin``) *and* the first failure strikes after the
    checkpoint completes (time ``R - margin + C``); otherwise 0 —
    with a single checkpoint there is nothing to roll back to.
    """
    R = check_positive(R, "R")
    margin = check_nonnegative(margin, "margin")
    if margin > R:
        raise ValueError(f"margin {margin} exceeds reservation {R}")
    lam = check_nonnegative(failure_rate, "failure_rate")
    n_trials = check_integer(n_trials, "n_trials", minimum=1)
    gen = as_generator(rng)
    C = checkpoint_law.sample(n_trials, gen)
    fits = C <= margin
    if lam == 0.0:
        survives = np.ones(n_trials, dtype=bool)
    else:
        first_failure = gen.exponential(1.0 / lam, n_trials)
        survives = first_failure > (R - margin + C)
    return np.where(fits & survives, R - margin, 0.0)


def simulate_periodic_with_failures(
    R: float,
    checkpoint_law: Distribution,
    period: float,
    failure_rate: float,
    n_trials: int,
    rng: RngLike = None,
    *,
    recovery: float = 0.0,
) -> NDArray[np.float64]:
    """Saved work of period-``T`` checkpointing under failures.

    Each trial repeatedly attempts a segment: ``T`` seconds of work
    followed by a drawn checkpoint ``C`` (the last segment shrinks to
    the remaining budget minus a final checkpoint). An exponential
    failure inside a segment voids it: the trial pays the elapsed time
    up to the failure plus ``recovery`` and retries from the last
    checkpoint. Work is banked only when its checkpoint completes
    within the reservation.

    Vectorized across trials; the Python loop runs once per *attempt
    round* (all active trials advance one segment per round).
    """
    R = check_positive(R, "R")
    T = check_positive(period, "period")
    lam = check_nonnegative(failure_rate, "failure_rate")
    recovery = check_nonnegative(recovery, "recovery")
    n_trials = check_integer(n_trials, "n_trials", minimum=1)
    gen = as_generator(rng)

    t = np.zeros(n_trials)  # wall-clock inside the reservation
    saved = np.zeros(n_trials)
    active = np.ones(n_trials, dtype=bool)
    rounds = 0
    while np.any(active):
        rounds += 1
        if rounds > _MAX_SEGMENTS:
            raise RuntimeError("periodic simulation did not terminate")
        idx = np.nonzero(active)[0]
        C = checkpoint_law.sample(idx.size, gen)
        budget = R - t[idx]
        # Segment work: a full period, or whatever still fits with the
        # checkpoint; trials whose budget cannot host any work+ckpt stop.
        work = np.minimum(T, budget - C)
        feasible = work > 0.0
        seg_len = work + C
        if lam > 0.0:
            failure = gen.exponential(1.0 / lam, idx.size)
        else:
            failure = np.full(idx.size, np.inf)
        failed = failure < seg_len

        # Infeasible trials: reservation effectively over.
        done = ~feasible
        # Failed segments: pay time-to-failure + recovery, keep going.
        pay = np.where(failed, failure + recovery, seg_len)
        t[idx] += np.where(done, 0.0, pay)
        saved[idx] += np.where(feasible & ~failed, work, 0.0)
        # Stop trials that are out of budget or infeasible.
        still = feasible & (t[idx] < R)
        active[idx] = still
    return saved


def _draw_failures(
    R: float, lam: float, n_trials: int, gen: np.random.Generator
) -> NDArray[np.float64]:
    """Pre-draw each trial's strike times as one row of a padded matrix.

    Homogeneous Poisson(``lam``) over ``[0, R]``: a Poisson count per
    trial, then sorted uniform positions; rows are padded with ``inf``
    (plus one guaranteed ``inf`` column) so "next strike after ``t``"
    is a vectorized lookup.
    """
    if lam == 0.0:
        return np.full((n_trials, 1), np.inf)
    counts = gen.poisson(lam * R, n_trials)
    width = int(counts.max()) if counts.size else 0
    mat = np.full((n_trials, width + 1), np.inf)
    if width:
        u = gen.uniform(0.0, R, (n_trials, width))
        mask = np.arange(width)[None, :] < counts[:, None]
        mat[:, :width] = np.sort(np.where(mask, u, np.inf), axis=1)
    return mat


def _next_failure(
    failures: NDArray[np.float64], rows: NDArray[np.intp], t: NDArray[np.float64]
) -> NDArray[np.float64]:
    """First strike strictly after ``t`` for each selected row."""
    sub = failures[rows]
    idx = np.sum(sub <= t[:, None], axis=1)
    return sub[np.arange(rows.size), np.minimum(idx, sub.shape[1] - 1)]


def simulate_restart_with_failures(
    R: float,
    checkpoint_law: Distribution,
    margin: float,
    failure_rate: float,
    n_trials: int,
    rng: RngLike = None,
    *,
    recovery: float = 0.0,
) -> NDArray[np.float64]:
    """Saved work of restart-without-checkpoint under failures.

    Each attempt runs ``budget - margin`` seconds of work and then a
    single final checkpoint; a strike anywhere in the attempt discards
    everything (there is nothing to roll back to) and, after
    ``recovery``, the application restarts *from scratch* in the
    remaining budget. Anchored by
    :func:`repro.core.failures.restart_expected_work`.
    """
    R = check_positive(R, "R")
    margin = check_nonnegative(margin, "margin")
    if margin > R:
        raise ValueError(f"margin {margin} exceeds reservation {R}")
    lam = check_nonnegative(failure_rate, "failure_rate")
    recovery = check_nonnegative(recovery, "recovery")
    n_trials = check_integer(n_trials, "n_trials", minimum=1)
    gen = as_generator(rng)

    t = np.zeros(n_trials)
    saved = np.zeros(n_trials)
    active = np.ones(n_trials, dtype=bool)
    rounds = 0
    while np.any(active):
        rounds += 1
        if rounds > _MAX_SEGMENTS:
            raise RuntimeError("restart simulation did not terminate")
        idx = np.nonzero(active)[0]
        budget = R - t[idx]
        work = budget - margin
        feasible = work > 0.0
        C = checkpoint_law.sample(idx.size, gen)
        span = work + C
        # The attempt is cut off at the reservation end: a checkpoint
        # larger than the margin can never commit.
        span_cut = np.minimum(span, budget)
        if lam > 0.0:
            strike = gen.exponential(1.0 / lam, idx.size)
        else:
            strike = np.full(idx.size, np.inf)
        failed = strike < span_cut
        success = feasible & ~failed & (C <= margin)
        saved[idx] = np.where(success, work, saved[idx])
        pay = np.where(failed, strike + recovery, span_cut)
        t[idx] += np.where(feasible, pay, 0.0)
        # Only a struck, still-feasible attempt retries; a survivor is
        # done either way (banked, or expired mid-checkpoint).
        active[idx] = feasible & failed
    return saved


@dataclass
class DynamicFailureStats:
    """Aggregate event counts from :func:`simulate_dynamic_with_failures`."""

    strikes: int = 0
    checkpoints: int = 0
    torn_checkpoints: int = 0
    proactive_checkpoints: int = 0
    tasks: int = 0
    window_decisions: int = 0


def simulate_dynamic_with_failures(
    R: float,
    task_law: Distribution,
    checkpoint_law: Distribution,
    failure_rate: float,
    n_trials: int,
    rng: RngLike = None,
    *,
    predictor: WindowPredictor | None = None,
    recovery: float = 0.0,
    policy_grid: int = 129,
    return_stats: bool = False,
) -> NDArray[np.float64] | tuple[NDArray[np.float64], DynamicFailureStats]:
    """Bank-and-continue dynamic rule under failures and windows.

    Mirrors :class:`repro.runtime.ReservationRunner` semantics: at each
    task boundary the failure-aware linear advantage (interpolated from
    :meth:`repro.core.failures.FailureAwareDynamicStrategy.decision_coefficients`)
    decides checkpoint-vs-gamble; committed checkpoints bank the
    segment and start a new one in the remaining budget (Section 4.4
    re-anchoring); a strike voids the open segment and, after
    ``recovery``, execution resumes from the last banked state. With a
    :class:`~repro.core.failures.WindowPredictor`, each trial's true
    strikes spawn true-positive windows (recall) plus an independent
    false-alarm stream (precision), and boundaries inside an open
    window decide with the in-window hazard — the proactive-checkpoint
    vs gamble-one-more-task rule.

    The predictor draws from its *own* seeded stream, so a zero-recall
    predictor is sample-path identical to ``predictor=None``.
    """
    R = check_positive(R, "R")
    lam = check_nonnegative(failure_rate, "failure_rate")
    recovery = check_nonnegative(recovery, "recovery")
    n_trials = check_integer(n_trials, "n_trials", minimum=1)
    gen = as_generator(rng)

    policy = FailureAwareDynamicPolicy(
        task_law, checkpoint_law, lam, predictor=predictor, grid_points=policy_grid
    )
    policy.reset(R)
    b_grid, k_out, m_out = policy._curves[False]
    if predictor is not None:
        _, k_in, m_in = policy._curves[True]
    else:
        k_in, m_in = k_out, m_out

    failures = _draw_failures(R, lam, n_trials, gen)
    # Windows come from the predictor's own stream: the main stream
    # above is untouched whether or not a predictor is present.
    max_windows = 0
    win_starts = np.full((n_trials, 1), np.inf)
    win_ends = np.full((n_trials, 1), -np.inf)
    if predictor is not None:
        pred_gen = predictor.stream()
        per_trial = [
            predictor.windows(failures[i][np.isfinite(failures[i])], R, lam, rng=pred_gen)
            for i in range(n_trials)
        ]
        max_windows = max((len(w) for w in per_trial), default=0)
        if max_windows:
            win_starts = np.full((n_trials, max_windows), np.inf)
            win_ends = np.full((n_trials, max_windows), -np.inf)
            for i, wins in enumerate(per_trial):
                for j, win in enumerate(wins):
                    win_starts[i, j] = win.start
                    win_ends[i, j] = win.end

    t = np.zeros(n_trials)
    seg = np.zeros(n_trials)
    seg_tasks = np.zeros(n_trials, dtype=np.int64)
    b0 = np.full(n_trials, R)
    saved = np.zeros(n_trials)
    active = np.ones(n_trials, dtype=bool)
    stats = DynamicFailureStats()
    rounds = 0
    while np.any(active):
        rounds += 1
        if rounds > _MAX_SEGMENTS:
            raise RuntimeError("dynamic simulation did not terminate")
        idx = np.nonzero(active)[0]
        ti = t[idx]
        in_win = np.any(
            (win_starts[idx] <= ti[:, None]) & (ti[:, None] <= win_ends[idx]), axis=1
        )
        budget = b0[idx] - seg[idx]
        kb = np.where(
            in_win, np.interp(budget, b_grid, k_in), np.interp(budget, b_grid, k_out)
        )
        mb = np.where(
            in_win, np.interp(budget, b_grid, m_in), np.interp(budget, b_grid, m_out)
        )
        want_ckpt = (seg_tasks[idx] > 0) & (seg[idx] * kb >= mb)
        if predictor is not None:
            out_would = seg[idx] * np.interp(budget, b_grid, k_out) >= np.interp(
                budget, b_grid, m_out
            )
            proactive = want_ckpt & in_win & ~out_would
            stats.proactive_checkpoints += int(np.count_nonzero(proactive))
            stats.window_decisions += int(np.count_nonzero(in_win))

        # Event durations: checkpoint draws first, then task draws —
        # a fixed order so runs are replayable from the seed.
        n_ck = int(np.count_nonzero(want_ckpt))
        dur = np.empty(idx.size)
        if n_ck:
            dur[want_ckpt] = checkpoint_law.sample(n_ck, gen)
        if idx.size - n_ck:
            dur[~want_ckpt] = task_law.sample(idx.size - n_ck, gen)
        end = ti + dur
        nf = _next_failure(failures, idx, ti)
        struck = nf < np.minimum(end, R)
        expired = ~struck & (np.where(want_ckpt, end > R, end >= R))

        stats.strikes += int(np.count_nonzero(struck))
        stats.torn_checkpoints += int(np.count_nonzero(want_ckpt & expired))
        committed = want_ckpt & ~struck & ~expired
        stats.checkpoints += int(np.count_nonzero(committed))
        stats.tasks += int(np.count_nonzero(~want_ckpt & ~struck & ~expired))

        saved[idx] += np.where(committed, seg[idx], 0.0)
        # Advance clocks: strike -> strike time + recovery; survivor ->
        # event end (capped at R when the reservation expired mid-event).
        t[idx] = np.where(struck, nf + recovery, np.minimum(end, R))
        # Segment bookkeeping: strikes and committed checkpoints both
        # re-anchor a fresh segment in the remaining budget; a completed
        # task extends the open segment.
        reanchor = struck | committed
        task_done = ~want_ckpt & ~struck & ~expired
        seg[idx] = np.where(reanchor, 0.0, np.where(task_done, seg[idx] + dur, seg[idx]))
        seg_tasks[idx] = np.where(
            reanchor, 0, np.where(task_done, seg_tasks[idx] + 1, seg_tasks[idx])
        )
        b0[idx] = np.where(reanchor, R - t[idx], b0[idx])
        active[idx] = ~expired & (t[idx] < R)
    if return_stats:
        return saved, stats
    return saved
