"""Monte-Carlo simulation of reservations with fail-stop errors.

Companion to :mod:`repro.core.failures` (the paper's future-work
extension): exponential errors strike during the reservation; work
since the last completed checkpoint is lost on each strike; a recovery
of fixed length precedes resumed execution.

Two strategies are simulated, both vectorized across trials:

* :func:`simulate_final_only_with_failures` — the paper's single
  end-of-reservation checkpoint;
* :func:`simulate_periodic_with_failures` — checkpoint after every
  ``period`` seconds of new work, final segment included.

Saved work counts everything captured by *completed* checkpoints by the
time the reservation expires.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import NDArray

from .._validation import as_generator, check_integer, check_nonnegative, check_positive
from ..distributions import Distribution, RngLike

__all__ = [
    "simulate_final_only_with_failures",
    "simulate_periodic_with_failures",
]

#: Safety bound on simulated segments per reservation.
_MAX_SEGMENTS = 100_000


def simulate_final_only_with_failures(
    R: float,
    checkpoint_law: Distribution,
    margin: float,
    failure_rate: float,
    n_trials: int,
    rng: RngLike = None,
) -> NDArray[np.float64]:
    """Saved work of the single final checkpoint under failures.

    A trial saves ``R - margin`` iff the drawn checkpoint fits
    (``C <= margin``) *and* the first failure strikes after the
    checkpoint completes (time ``R - margin + C``); otherwise 0 —
    with a single checkpoint there is nothing to roll back to.
    """
    R = check_positive(R, "R")
    margin = check_nonnegative(margin, "margin")
    if margin > R:
        raise ValueError(f"margin {margin} exceeds reservation {R}")
    lam = check_nonnegative(failure_rate, "failure_rate")
    n_trials = check_integer(n_trials, "n_trials", minimum=1)
    gen = as_generator(rng)
    C = checkpoint_law.sample(n_trials, gen)
    fits = C <= margin
    if lam == 0.0:
        survives = np.ones(n_trials, dtype=bool)
    else:
        first_failure = gen.exponential(1.0 / lam, n_trials)
        survives = first_failure > (R - margin + C)
    return np.where(fits & survives, R - margin, 0.0)


def simulate_periodic_with_failures(
    R: float,
    checkpoint_law: Distribution,
    period: float,
    failure_rate: float,
    n_trials: int,
    rng: RngLike = None,
    *,
    recovery: float = 0.0,
) -> NDArray[np.float64]:
    """Saved work of period-``T`` checkpointing under failures.

    Each trial repeatedly attempts a segment: ``T`` seconds of work
    followed by a drawn checkpoint ``C`` (the last segment shrinks to
    the remaining budget minus a final checkpoint). An exponential
    failure inside a segment voids it: the trial pays the elapsed time
    up to the failure plus ``recovery`` and retries from the last
    checkpoint. Work is banked only when its checkpoint completes
    within the reservation.

    Vectorized across trials; the Python loop runs once per *attempt
    round* (all active trials advance one segment per round).
    """
    R = check_positive(R, "R")
    T = check_positive(period, "period")
    lam = check_nonnegative(failure_rate, "failure_rate")
    recovery = check_nonnegative(recovery, "recovery")
    n_trials = check_integer(n_trials, "n_trials", minimum=1)
    gen = as_generator(rng)

    t = np.zeros(n_trials)  # wall-clock inside the reservation
    saved = np.zeros(n_trials)
    active = np.ones(n_trials, dtype=bool)
    rounds = 0
    while np.any(active):
        rounds += 1
        if rounds > _MAX_SEGMENTS:
            raise RuntimeError("periodic simulation did not terminate")
        idx = np.nonzero(active)[0]
        C = checkpoint_law.sample(idx.size, gen)
        budget = R - t[idx]
        # Segment work: a full period, or whatever still fits with the
        # checkpoint; trials whose budget cannot host any work+ckpt stop.
        work = np.minimum(T, budget - C)
        feasible = work > 0.0
        seg_len = work + C
        if lam > 0.0:
            failure = gen.exponential(1.0 / lam, idx.size)
        else:
            failure = np.full(idx.size, np.inf)
        failed = failure < seg_len

        # Infeasible trials: reservation effectively over.
        done = ~feasible
        # Failed segments: pay time-to-failure + recovery, keep going.
        pay = np.where(failed, failure + recovery, seg_len)
        t[idx] += np.where(done, 0.0, pay)
        saved[idx] += np.where(feasible & ~failed, work, 0.0)
        # Stop trials that are out of budget or infeasible.
        still = feasible & (t[idx] < R)
        active[idx] = still
    return saved
