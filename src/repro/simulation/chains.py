"""Monte-Carlo simulation of non-IID workflow chains.

Exercises the extended dynamic rule of
:meth:`repro.workflows.chain.LinearWorkflow.should_checkpoint` at
scale. The rule's decision after stage ``i`` depends only on the
accumulated work ``w`` (the stage's laws are fixed), so for each stage
it reduces to a *per-stage work threshold*; :func:`chain_thresholds`
precomputes them by root-finding, and :func:`simulate_chain_dynamic`
then advances all trials one stage per vectorized round.

:func:`simulate_chain_fixed_stage` evaluates the general *static* plan
("checkpoint after stage k") for cross-validation against
:class:`repro.core.general_static.GeneralStaticSolver`.
"""

from __future__ import annotations


import numpy as np
from numpy.typing import NDArray
from scipy import optimize

from .._validation import as_generator, check_integer, check_positive
from ..distributions import RngLike
from ..workflows.chain import LinearWorkflow

__all__ = ["chain_thresholds", "simulate_chain_fixed_stage", "simulate_chain_dynamic"]


def chain_thresholds(
    R: float,
    workflow: LinearWorkflow,
    max_stages: int | None = None,
    *,
    scan_points: int = 129,
) -> NDArray[np.float64]:
    """Work thresholds of the extended dynamic rule, one per stage.

    ``thresholds[i]`` is the smallest accumulated work at which the rule
    checkpoints right after stage ``i``; trials below it continue. The
    final stage of an acyclic chain always checkpoints (threshold 0).
    """
    R = check_positive(R, "R")
    if max_stages is None:
        if workflow.cyclic:
            raise ValueError("max_stages is required for cyclic chains")
        max_stages = len(workflow)
    max_stages = check_integer(max_stages, "max_stages", minimum=1)

    thresholds = np.empty(max_stages)
    for i in range(max_stages):
        if not workflow.has_next(i) or i == max_stages - 1:
            thresholds[i] = 0.0  # no continuation possible: checkpoint
            continue

        def adv(w: float, i: int = i) -> float:
            return workflow.expected_if_checkpoint(i, w, R - w) - workflow.expected_if_continue(
                i, w, R - w
            )

        ws = np.linspace(0.0, R, scan_points)
        vals = np.array([adv(float(w)) for w in ws])
        if vals[0] >= 0.0:
            thresholds[i] = 0.0
            continue
        sign_change = np.nonzero((vals[:-1] < 0.0) & (vals[1:] >= 0.0))[0]
        if sign_change.size == 0:
            thresholds[i] = R
            continue
        j = int(sign_change[0])
        thresholds[i] = float(optimize.brentq(adv, ws[j], ws[j + 1], xtol=1e-9))
    return thresholds


def simulate_chain_fixed_stage(
    R: float,
    workflow: LinearWorkflow,
    k: int,
    n_trials: int,
    rng: RngLike = None,
) -> NDArray[np.float64]:
    """Saved work when checkpointing after stage ``k`` (1-based).

    Vectorized: one law-sample call per stage. Cross-validates the
    general static solver's Equation-(3) analog.
    """
    R = check_positive(R, "R")
    k = check_integer(k, "k", minimum=1)
    n_trials = check_integer(n_trials, "n_trials", minimum=1)
    gen = as_generator(rng)
    W = np.zeros(n_trials)
    for i in range(k):
        W += workflow.task_at(i).duration_law.sample(n_trials, gen)
    C = workflow.task_at(k - 1).checkpoint_law.sample(n_trials, gen)
    fits = (W <= R) & (W + C <= R)
    return np.where(fits, W, 0.0)


def simulate_chain_dynamic(
    R: float,
    workflow: LinearWorkflow,
    n_trials: int,
    rng: RngLike = None,
    *,
    max_stages: int | None = None,
) -> NDArray[np.float64]:
    """Saved work under the extended (per-stage) dynamic rule.

    All trials advance one stage per round; a trial stops at the first
    stage whose threshold its accumulated work reaches (always at the
    last stage of an acyclic chain), then draws that stage's checkpoint.
    Trials whose work overruns ``R`` mid-chain save nothing.
    """
    R = check_positive(R, "R")
    n_trials = check_integer(n_trials, "n_trials", minimum=1)
    gen = as_generator(rng)
    thresholds = chain_thresholds(R, workflow, max_stages)
    n_stages = thresholds.size

    W = np.zeros(n_trials)
    saved = np.zeros(n_trials)
    stopped_at = np.full(n_trials, -1, dtype=np.int64)  # stage of checkpoint
    active = np.ones(n_trials, dtype=bool)
    for i in range(n_stages):
        idx = np.nonzero(active)[0]
        if idx.size == 0:
            break
        draws = workflow.task_at(i).duration_law.sample(idx.size, gen)
        W[idx] += draws
        overrun = W[idx] > R
        # Overrun trials lose everything.
        active[idx[overrun]] = False
        alive = idx[~overrun]
        stop = W[alive] >= thresholds[i]
        stopping = alive[stop]
        stopped_at[stopping] = i
        active[stopping] = False
    # Draw checkpoints stage by stage for the trials that stopped there.
    for i in range(n_stages):
        members = np.nonzero(stopped_at == i)[0]
        if members.size == 0:
            continue
        C = workflow.task_at(i).checkpoint_law.sample(members.size, gen)
        ok = W[members] + C <= R
        saved[members[ok]] = W[members[ok]]
    return saved
