"""Multi-reservation campaign runner.

Section 2 of the paper motivates the whole study with iterative
applications whose total runtime is unknown: the user books a *series*
of fixed-length reservations, each starting with a recovery of length
``r`` (except the first) and ending with a checkpoint. This module
executes that end-to-end story: run reservations until the application
has accumulated a target amount of work, tracking how many reservations
were needed and what they cost under either billing model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from .._validation import as_generator, check_integer, check_nonnegative, check_positive
from ..core.campaign import BillingModel, ContinuationAdvisor
from ..core.policies import WorkflowPolicy
from ..distributions import Distribution, RngLike
from .engine import ReservationRecord, run_reservation
from .workload import TaskSource

__all__ = ["CampaignResult", "run_campaign"]


@dataclass
class CampaignResult:
    """Outcome of a multi-reservation campaign.

    Attributes
    ----------
    target_work:
        Work the application needed in total.
    work_done:
        Work actually captured by checkpoints (>= target on success).
    reservations_used:
        Number of reservations consumed.
    completed:
        Whether the target was reached within ``max_reservations``.
    total_cost:
        Money spent under the chosen billing model (rate x time).
    total_reserved_time, total_used_time:
        Aggregate reserved vs actually-consumed machine time.
    records:
        Per-reservation :class:`ReservationRecord` timelines.
    """

    target_work: float
    work_done: float = 0.0
    reservations_used: int = 0
    completed: bool = False
    total_cost: float = 0.0
    total_reserved_time: float = 0.0
    total_used_time: float = 0.0
    records: list[ReservationRecord] = field(default_factory=list)

    @property
    def utilization(self) -> float:
        """Overall saved-work per reserved second."""
        if self.total_reserved_time == 0.0:
            return 0.0
        return self.work_done / self.total_reserved_time

    def summary(self) -> str:
        """One-line human-readable description."""
        status = "completed" if self.completed else "INCOMPLETE"
        return (
            f"{status}: {self.work_done:.4g}/{self.target_work:.4g} work in "
            f"{self.reservations_used} reservations, utilization "
            f"{100 * self.utilization:.1f}%, cost {self.total_cost:.4g}"
        )


def run_campaign(
    target_work: float,
    R: "float | Sequence[float]",
    tasks: "TaskSource | Distribution",
    checkpoint_law: Distribution,
    policy: WorkflowPolicy,
    rng: RngLike = None,
    *,
    recovery: float = 0.0,
    billing: BillingModel = BillingModel.BY_RESERVATION,
    price_per_second: float = 1.0,
    continue_after_checkpoint: bool = False,
    advisor: Optional[ContinuationAdvisor] = None,
    max_reservations: int = 10_000,
) -> CampaignResult:
    """Run reservations until ``target_work`` is saved.

    Parameters
    ----------
    target_work:
        Total work the application must accumulate across checkpoints.
    R:
        Length of every reservation, or a sequence of lengths cycled
        through in order (resource providers rarely grant identical
        slots; the paper's "availability ... of each reservation").
    tasks, checkpoint_law, policy:
        Workflow definition (see :func:`repro.simulation.engine.run_reservation`).
    rng:
        Seed or generator (threads through all reservations).
    recovery:
        Restart cost paid at the start of every reservation after the
        first (Section 2).
    billing, price_per_second:
        Cost model: reserved time (HPC) or used time (cloud) at a flat
        rate.
    continue_after_checkpoint, advisor:
        Section 4.4 behaviour inside each reservation.
    max_reservations:
        Abort bound for policies that make no progress.

    Notes
    -----
    A reservation whose final checkpoint fails contributes no progress —
    exactly the failure mode the paper's strategies minimize; campaigns
    therefore reveal the *compounding* value of a good within-reservation
    strategy.
    """
    target_work = check_positive(target_work, "target_work")
    if isinstance(R, (int, float)):
        lengths = [check_positive(float(R), "R")]
    else:
        lengths = [check_positive(float(r), "R") for r in R]
        if not lengths:
            raise ValueError("R sequence must not be empty")
    check_nonnegative(price_per_second, "price_per_second")
    max_reservations = check_integer(max_reservations, "max_reservations", minimum=1)
    gen = as_generator(rng)
    result = CampaignResult(target_work=target_work)

    while result.work_done < target_work:
        if result.reservations_used >= max_reservations:
            break
        R_now = lengths[result.reservations_used % len(lengths)]
        rec = run_reservation(
            R_now,
            tasks,
            checkpoint_law,
            policy,
            gen,
            recovery=recovery if result.reservations_used > 0 else 0.0,
            continue_after_checkpoint=continue_after_checkpoint,
            advisor=advisor,
        )
        result.records.append(rec)
        result.reservations_used += 1
        result.work_done += rec.work_saved
        result.total_reserved_time += R_now
        result.total_used_time += rec.time_used
        if billing is BillingModel.BY_RESERVATION:
            result.total_cost += price_per_second * R_now
        else:
            result.total_cost += price_per_second * rec.time_used
    result.completed = result.work_done >= target_work
    return result
