"""Sequential event-level reservation engine.

The vectorized simulators in :mod:`repro.simulation.montecarlo` answer
"what is the mean saved work" as fast as possible; this engine answers
"what exactly happened" for a *single* reservation: it produces a full
event timeline (task completions, checkpoint attempts, successes and
failures, reservation expiry) and supports the §4.4 extension of
continuing after a successful checkpoint, optionally guided by a
:class:`repro.core.campaign.ContinuationAdvisor`.

It is deliberately *not* vectorized — it is the policy-in-the-loop
harness used by the campaign runner and by the end-to-end solver
examples, where per-event fidelity matters more than throughput.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .._validation import as_generator, check_nonnegative, check_positive
from ..core.campaign import ContinuationAdvisor
from ..core.policies import WorkflowPolicy
from ..distributions import Distribution, RngLike
from ..obs.drift import DurationRecorder
from ..obs.metrics import global_registry
from .workload import TaskSource, as_task_source

__all__ = ["EventKind", "Event", "ReservationRecord", "run_reservation"]

#: Guard against policies that never checkpoint.
_MAX_TASKS = 1_000_000


class EventKind(enum.Enum):
    """Kinds of timeline events recorded by the engine."""

    RECOVERY = "recovery"
    TASK_COMPLETED = "task_completed"
    TASK_CUT_SHORT = "task_cut_short"
    CHECKPOINT_STARTED = "checkpoint_started"
    CHECKPOINT_SUCCEEDED = "checkpoint_succeeded"
    CHECKPOINT_FAILED = "checkpoint_failed"
    RESERVATION_DROPPED = "reservation_dropped"
    RESERVATION_EXPIRED = "reservation_expired"


@dataclass(frozen=True)
class Event:
    """One timeline entry: what happened and when it finished."""

    kind: EventKind
    time: float
    detail: float = 0.0


@dataclass
class ReservationRecord:
    """Complete account of one reservation.

    Attributes
    ----------
    R:
        Reservation length.
    work_saved:
        Total work captured by successful checkpoints.
    tasks_completed:
        Number of tasks that finished inside the reservation.
    checkpoints_succeeded, checkpoints_failed:
        Checkpoint attempt outcomes.
    time_used:
        Machine time consumed (recovery + tasks + checkpoints, capped at
        ``R``); the quantity billed under by-usage charging.
    events:
        Ordered timeline.
    """

    R: float
    work_saved: float = 0.0
    tasks_completed: int = 0
    checkpoints_succeeded: int = 0
    checkpoints_failed: int = 0
    time_used: float = 0.0
    events: list[Event] = field(default_factory=list)

    def log(self, kind: EventKind, time: float, detail: float = 0.0) -> None:
        """Append a timeline event."""
        self.events.append(Event(kind, time, detail))

    @property
    def utilization(self) -> float:
        """Saved work per unit of reservation: ``work_saved / R``."""
        return self.work_saved / self.R


def run_reservation(
    R: float,
    tasks: "TaskSource | Distribution",
    checkpoint_law: Distribution,
    policy: WorkflowPolicy,
    rng: RngLike = None,
    *,
    recovery: float = 0.0,
    continue_after_checkpoint: bool = False,
    advisor: Optional[ContinuationAdvisor] = None,
    duration_recorder: Optional[DurationRecorder] = None,
    recorder_key: str | None = None,
) -> ReservationRecord:
    """Simulate one reservation at event granularity.

    Parameters
    ----------
    R:
        Reservation length.
    tasks:
        Task-duration source (law, trace, or live application).
    checkpoint_law:
        Checkpoint-duration law.
    policy:
        Per-boundary decision rule. Inside each *segment* (the span
        since the last successful checkpoint) the policy sees the work
        and task count of that segment, evaluated against the remaining
        budget.
    rng:
        Seed or generator.
    recovery:
        Restart cost ``r`` consumed at the start (Section 2's
        "reservation of length R - r").
    continue_after_checkpoint:
        Section 4.4: whether to start a new segment when a checkpoint
        succeeds with time to spare. Without an ``advisor``, continues
        whenever at least ``C_min + E[X]`` budget remains.
    advisor:
        Optional :class:`ContinuationAdvisor` consulted instead of the
        default heuristic.
    duration_recorder:
        Optional :class:`repro.obs.DurationRecorder`; every sampled
        checkpoint duration (attempted, successful or not) is recorded
        under ``recorder_key``, closing the telemetry loop between
        simulated reservations and the drift detector.
    recorder_key:
        Key for the recorder; defaults to the checkpoint law's
        canonical spec, matching the advisor-service convention.

    Returns
    -------
    ReservationRecord
        The full timeline and aggregate outcome.
    """
    R = check_positive(R, "R")
    recovery = check_nonnegative(recovery, "recovery")
    if recovery >= R:
        raise ValueError(f"recovery {recovery} consumes the whole reservation {R}")
    gen = as_generator(rng)
    source = as_task_source(tasks)
    source.reset()
    record = ReservationRecord(R=R)
    t = 0.0
    if recovery > 0.0:
        t = recovery
        record.log(EventKind.RECOVERY, t, recovery)

    while True:  # one iteration per segment (work between checkpoints)
        budget = R - t
        if budget <= 0.0:
            record.log(EventKind.RESERVATION_EXPIRED, R)
            break
        policy.reset(budget)
        seg_work = 0.0
        seg_tasks = 0
        expired = False
        while not policy.should_checkpoint(seg_work, seg_tasks):
            if seg_tasks >= _MAX_TASKS:
                raise RuntimeError("policy never chose to checkpoint")
            try:
                x = source.next_duration(gen)
            except StopIteration:
                break  # trace exhausted: checkpoint what we have
            if t + x >= R:
                record.log(EventKind.TASK_CUT_SHORT, R, x)
                expired = True
                t = R
                break
            t += x
            seg_work += x
            seg_tasks += 1
            record.log(EventKind.TASK_COMPLETED, t, x)
        if expired:
            record.log(EventKind.RESERVATION_EXPIRED, R)
            break

        record.log(EventKind.CHECKPOINT_STARTED, t)
        c = float(checkpoint_law.sample(1, gen)[0])
        if duration_recorder is not None:
            if recorder_key is None:
                recorder_key = checkpoint_law.spec()
            duration_recorder.record(recorder_key, c)
        if t + c > R:
            record.checkpoints_failed += 1
            record.log(EventKind.CHECKPOINT_FAILED, R, c)
            t = R
            record.log(EventKind.RESERVATION_EXPIRED, R)
            break
        t += c
        record.checkpoints_succeeded += 1
        record.work_saved += seg_work
        record.tasks_completed += seg_tasks
        record.log(EventKind.CHECKPOINT_SUCCEEDED, t, c)

        if not continue_after_checkpoint:
            record.log(EventKind.RESERVATION_DROPPED, t)
            break
        remaining = R - t
        if advisor is not None:
            go_on = advisor.decide(remaining).continue_execution
        else:
            go_on = remaining > checkpoint_law.lower + source_mean(source)
        if not go_on:
            record.log(EventKind.RESERVATION_DROPPED, t)
            break

    record.time_used = min(t, R)
    # One bulk update per reservation (not per event): the engine's hot
    # loop stays lock-free, yet every run feeds the process registry.
    registry = global_registry()
    registry.incr("sim.reservations")
    registry.incr("sim.tasks_completed", record.tasks_completed)
    registry.incr("sim.checkpoints_succeeded", record.checkpoints_succeeded)
    registry.incr("sim.checkpoints_failed", record.checkpoints_failed)
    registry.observe("sim.work_saved", record.work_saved)
    registry.observe("sim.time_used", record.time_used)
    return record


def source_mean(source: TaskSource) -> float:
    """Best-effort mean task duration of a source (for heuristics)."""
    law = getattr(source, "law", None)
    if law is not None:
        return float(law.mean())
    durations = getattr(source, "durations", None)
    if durations is not None:
        return float(np.mean(durations))
    return 0.0
