"""Monte-Carlo and event-level simulation of reservations.

* :mod:`repro.simulation.montecarlo` — vectorized estimators of the
  paper's expectations and of policy performance;
* :mod:`repro.simulation.engine` — sequential event-level engine
  (timelines, §4.4 continuation);
* :mod:`repro.simulation.campaign` — multi-reservation campaigns;
* :mod:`repro.simulation.results` — summaries and policy comparisons;
* :mod:`repro.simulation.workload` — task-duration sources (laws,
  traces, live applications).
"""

from .campaign import CampaignResult, run_campaign
from .chains import (
    chain_thresholds,
    simulate_chain_dynamic,
    simulate_chain_fixed_stage,
)
from .engine import Event, EventKind, ReservationRecord, run_reservation
from .failures import (
    DynamicFailureStats,
    simulate_dynamic_with_failures,
    simulate_final_only_with_failures,
    simulate_periodic_with_failures,
    simulate_restart_with_failures,
)
from .montecarlo import (
    simulate_fixed_count,
    simulate_oracle,
    simulate_policy,
    simulate_preemptible,
    simulate_threshold,
)
from .results import PolicyComparison, SimulationSummary, compare_policies
from .workload import (
    CallbackTaskSource,
    DistributionTaskSource,
    TaskSource,
    TraceTaskSource,
    as_task_source,
)

__all__ = [
    "simulate_preemptible",
    "simulate_fixed_count",
    "simulate_threshold",
    "simulate_oracle",
    "simulate_policy",
    "DynamicFailureStats",
    "simulate_dynamic_with_failures",
    "simulate_final_only_with_failures",
    "simulate_periodic_with_failures",
    "simulate_restart_with_failures",
    "chain_thresholds",
    "simulate_chain_fixed_stage",
    "simulate_chain_dynamic",
    "SimulationSummary",
    "PolicyComparison",
    "compare_policies",
    "Event",
    "EventKind",
    "ReservationRecord",
    "run_reservation",
    "CampaignResult",
    "run_campaign",
    "TaskSource",
    "DistributionTaskSource",
    "TraceTaskSource",
    "CallbackTaskSource",
    "as_task_source",
]
