"""Task-duration sources for the sequential engine.

The vectorized simulators draw IID durations straight from a law; the
sequential engine (:mod:`repro.simulation.engine`) instead consumes a
:class:`TaskSource`, which generalizes the IID case to replayed traces
and to live instrumented applications (the iterative solvers of
:mod:`repro.workflows`), covering the paper's "simulations using traces
or actual application runs".
"""

from __future__ import annotations

import abc
from typing import Callable, Sequence

import numpy as np

from ..distributions import Distribution

__all__ = [
    "TaskSource",
    "DistributionTaskSource",
    "TraceTaskSource",
    "CallbackTaskSource",
    "as_task_source",
]


class TaskSource(abc.ABC):
    """Produces successive task durations for one reservation run."""

    @abc.abstractmethod
    def next_duration(self, rng: np.random.Generator) -> float:
        """Duration of the next task (seconds)."""

    def reset(self) -> None:
        """Rewind per-reservation state (default: stateless)."""


class DistributionTaskSource(TaskSource):
    """IID durations drawn from a law — the paper's Section 4 model."""

    def __init__(self, law: Distribution) -> None:
        self.law = law

    def next_duration(self, rng: np.random.Generator) -> float:
        return float(self.law.sample(1, rng)[0])


class TraceTaskSource(TaskSource):
    """Replays a recorded duration trace.

    Parameters
    ----------
    durations:
        Observed task durations, replayed in order.
    cycle:
        Whether to wrap around when the trace is exhausted (default) or
        raise ``StopIteration``.
    """

    def __init__(self, durations: Sequence[float], *, cycle: bool = True) -> None:
        arr = np.asarray(durations, dtype=float).ravel()
        if arr.size == 0:
            raise ValueError("trace must contain at least one duration")
        if np.any(arr < 0.0) or not np.all(np.isfinite(arr)):
            raise ValueError("trace durations must be finite and nonnegative")
        self.durations = arr
        self.cycle = cycle
        self._pos = 0

    def next_duration(self, rng: np.random.Generator) -> float:
        if self._pos >= self.durations.size:
            if not self.cycle:
                raise StopIteration("trace exhausted")
            self._pos = 0
        val = float(self.durations[self._pos])
        self._pos += 1
        return val

    def reset(self) -> None:
        self._pos = 0


class CallbackTaskSource(TaskSource):
    """Adapts any callable ``(rng) -> float`` — used by the instrumented
    solver wrappers in :mod:`repro.workflows.instrumentation`."""

    def __init__(self, fn: Callable[[np.random.Generator], float]) -> None:
        self.fn = fn

    def next_duration(self, rng: np.random.Generator) -> float:
        return float(self.fn(rng))


def as_task_source(obj: "TaskSource | Distribution") -> TaskSource:
    """Coerce a law or source into a :class:`TaskSource`."""
    if isinstance(obj, TaskSource):
        return obj
    if isinstance(obj, Distribution):
        return DistributionTaskSource(obj)
    raise TypeError(f"cannot build a TaskSource from {type(obj).__name__}")
