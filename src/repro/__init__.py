"""repro: when to checkpoint at the end of a fixed-length reservation.

A complete reproduction of Barbut, Benoit, Herault, Robert & Vivien,
*When to checkpoint at the end of a fixed-length reservation?*
(FTXS'23 / SC 2023 workshops), plus the simulation, trace-calibration
and iterative-application substrates needed to use the strategies on
real workloads.

Quick start (Scenario 1, preemptible application)::

    from repro import Uniform, solve_preemptible
    sol = solve_preemptible(R=10.0, law=Uniform(1.0, 7.5))
    sol.x_opt                 # 5.5: checkpoint 5.5 s before the end
    sol.gain                  # 1.246x over the worst-case margin

Quick start (Scenario 2, stochastic workflow)::

    from repro import Normal, truncate, StaticStrategy, DynamicStrategy
    task = Normal(3.0, 0.5)
    ckpt = truncate(Normal(5.0, 0.4), 0.0)
    StaticStrategy(30.0, task, ckpt).solve().n_opt          # 7 tasks
    DynamicStrategy(29.0, truncate(task, 0.0), ckpt).crossing_point()

Subpackages
-----------
``repro.distributions``
    Probability laws, truncation, IID sums.
``repro.core``
    The paper's solvers: preemptible margins, static counts, dynamic
    rule, optimal stopping, policies, continuation advisor.
``repro.simulation``
    Vectorized Monte Carlo, event-level engine, campaigns.
``repro.workflows``
    Iterative solvers (Jacobi/GS/SOR/CG/GMRES), instrumentation,
    general workflow chains.
``repro.service``
    Cached, batched checkpoint-advisor service: policy compilation
    cache, O(1) batched advice, JSON-lines TCP server + client,
    metrics.
``repro.traces``
    Trace synthesis, MLE fitting, model selection.
``repro.analysis`` / ``repro.plotting``
    Sweeps, gain tables, ASCII charts, CSV export.
"""

from .core import (
    DynamicPolicy,
    DynamicStrategy,
    FixedMargin,
    MarginSolution,
    OptimalMargin,
    OptimalStoppingPolicy,
    OptimalStoppingSolver,
    PessimisticMargin,
    StaticCountPolicy,
    StaticOptimalPolicy,
    StaticStrategy,
)
from .core import solve as solve_preemptible
from .core.preemptible import expected_work as preemptible_expected_work
from .distributions import (
    Deterministic,
    Distribution,
    Empirical,
    Exponential,
    Gamma,
    LogNormal,
    Normal,
    Poisson,
    Uniform,
    Weibull,
    iid_sum,
    truncate,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # distributions
    "Distribution",
    "Uniform",
    "Exponential",
    "Normal",
    "LogNormal",
    "Gamma",
    "Weibull",
    "Poisson",
    "Deterministic",
    "Empirical",
    "truncate",
    "iid_sum",
    # core
    "solve_preemptible",
    "preemptible_expected_work",
    "MarginSolution",
    "StaticStrategy",
    "DynamicStrategy",
    "OptimalStoppingSolver",
    "FixedMargin",
    "PessimisticMargin",
    "OptimalMargin",
    "StaticCountPolicy",
    "StaticOptimalPolicy",
    "DynamicPolicy",
    "OptimalStoppingPolicy",
]
