"""Diagnostic record and rendering shared by the engine and the CLI."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One rule violation at a source location.

    Ordering is (path, line, col, rule) so sorted output is stable
    across runs and operating systems — diffable in CI logs.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """Human-readable one-liner, ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        """Strict-JSON-safe dict for ``repro lint --format json``."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
