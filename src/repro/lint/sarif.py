"""SARIF 2.1.0 emitter for lint diagnostics.

SARIF (Static Analysis Results Interchange Format) is what CI systems
ingest for inline PR annotations and code-scanning dashboards. The
report carries the full rule catalog — per-file and flow rules — in
``tool.driver.rules`` so consumers can show titles and rationales, and
one ``result`` per diagnostic with a physical location. Only the
subset of the format CI consumers actually read is emitted.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .diagnostics import Diagnostic

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "sarif_report"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def sarif_report(
    diagnostics: Sequence[Diagnostic],
    *,
    catalog: Mapping[str, Mapping[str, str]],
    files_checked: int,
) -> dict[str, object]:
    """Build the SARIF report object (serialize with ``json.dumps``)."""
    rules = [
        {
            "id": rule_id,
            "shortDescription": {"text": info["title"]},
            "fullDescription": {"text": info["rationale"]},
            "defaultConfiguration": {"level": "error"},
        }
        for rule_id, info in sorted(catalog.items())
    ]
    rule_index = {rule_id: i for i, rule_id in enumerate(sorted(catalog))}
    results: list[dict[str, object]] = []
    for diag in diagnostics:
        result: dict[str, object] = {
            "ruleId": diag.rule,
            "level": "error",
            "message": {"text": diag.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": diag.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": diag.line,
                            "startColumn": diag.col,
                        },
                    }
                }
            ],
        }
        if diag.rule in rule_index:
            result["ruleIndex"] = rule_index[diag.rule]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/linting.md",
                        "rules": rules,
                    }
                },
                "properties": {"filesChecked": files_checked},
                "results": results,
            }
        ],
    }
