"""``repro lint`` implementation (argparse wiring lives in repro.cli).

Output formats:

* ``human`` (default) — one ``path:line:col: RULE message`` per finding
  plus a summary line, matching the style of every other compiler-ish
  tool so editors and CI annotations can parse it.
* ``json`` — a strict-JSON report object::

      {
        "version": 1,
        "files_checked": 42,
        "clean": false,
        "counts": {"REP002": 2},
        "diagnostics": [
          {"rule": "REP002", "path": "...", "line": 10, "col": 5,
           "message": "..."}
        ],
        "flow": {"files_reanalyzed": 3}          # only with --flow
      }

* ``sarif`` — SARIF 2.1.0 for CI code-scanning annotation
  (:mod:`repro.lint.sarif`).

``--flow`` layers the interprocedural analysis (REP101–REP105,
:mod:`repro.lint.flow`) on top of the per-file rules. In flow mode the
per-file REP005 pass is demoted: REP101 re-reports every direct
finding REP005 would make and adds the transitive ones, so running
both would double-report (select REP005 explicitly to force it).

Exit codes: 0 clean, 1 diagnostics found, 2 usage error (unknown rule
id, flow-only rule without ``--flow``, or missing path).
"""

from __future__ import annotations

import json
import os
import sys
from collections import Counter
from typing import Sequence, TextIO

from .diagnostics import Diagnostic
from .engine import iter_python_files, run_paths
from .flow import FLOW_RULES, run_flow_paths
from .rules import ALL_RULES, rule_catalog
from .sarif import sarif_report

__all__ = ["full_catalog", "run_lint"]

JSON_REPORT_VERSION = 1


def full_catalog() -> dict[str, dict[str, str]]:
    """Per-file and flow rules, ``{id: {"title": ..., "rationale": ...}}``."""
    catalog = rule_catalog()
    for info in FLOW_RULES:
        catalog[info.id] = {"title": info.title, "rationale": info.rationale}
    return catalog


def run_lint(
    paths: Sequence[str],
    *,
    output_format: str = "human",
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    list_rules: bool = False,
    flow: bool = False,
    cache_dir: str | None = None,
    no_cache: bool = False,
    stream: TextIO | None = None,
) -> int:
    """Run the linter; returns the process exit code."""
    out = stream if stream is not None else sys.stdout
    if list_rules:
        for rule_id, info in sorted(full_catalog().items()):
            print(f"{rule_id}  {info['title']}", file=out)
        return 0

    file_ids = {rule.id for rule in ALL_RULES}
    flow_ids = {info.id for info in FLOW_RULES}
    for requested in list(select or []) + list(ignore or []):
        if requested not in file_ids | flow_ids:
            print(
                f"error: unknown rule id {requested!r}; known: "
                f"{', '.join(sorted(file_ids | flow_ids))}",
                file=sys.stderr,
            )
            return 2
        if requested in flow_ids and not flow:
            print(
                f"error: {requested} is a flow rule; it requires --flow",
                file=sys.stderr,
            )
            return 2

    file_select = [rule for rule in select if rule in file_ids] if select else None
    file_ignore = [rule for rule in ignore if rule in file_ids] if ignore else None
    if flow and not (select and "REP005" in select):
        # REP101 supersedes REP005 (same direct findings + transitive
        # ones); keep the per-file pass out to avoid double reports.
        file_ignore = sorted(set(file_ignore or []) | {"REP005"})
    run_file_rules = not (select and not file_select)

    try:
        file_diags: list[Diagnostic] = []
        if run_file_rules:
            file_diags, files_checked = run_paths(
                paths, select=file_select, ignore=file_ignore
            )
        else:
            for path in paths:
                if not os.path.exists(path):
                    raise FileNotFoundError(f"lint path does not exist: {path}")
            files_checked = sum(1 for _ in iter_python_files(paths))
        flow_reanalyzed: int | None = None
        flow_diags: list[Diagnostic] = []
        if flow:
            result = run_flow_paths(
                paths, cache_dir=cache_dir, use_cache=not no_cache
            )
            flow_diags = result.diagnostics
            flow_reanalyzed = result.files_reanalyzed
            files_checked = result.files_checked
            if select:
                flow_diags = [d for d in flow_diags if d.rule in set(select)]
            if ignore:
                flow_diags = [d for d in flow_diags if d.rule not in set(ignore)]
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    diagnostics = sorted(file_diags + flow_diags)
    if output_format == "json":
        report: dict[str, object] = {
            "version": JSON_REPORT_VERSION,
            "files_checked": files_checked,
            "clean": not diagnostics,
            "counts": dict(sorted(Counter(d.rule for d in diagnostics).items())),
            "diagnostics": [d.to_dict() for d in diagnostics],
        }
        if flow_reanalyzed is not None:
            report["flow"] = {"files_reanalyzed": flow_reanalyzed}
        print(
            json.dumps(report, indent=2, sort_keys=True, allow_nan=False),
            file=out,
        )
    elif output_format == "sarif":
        report_obj = sarif_report(
            diagnostics, catalog=full_catalog(), files_checked=files_checked
        )
        print(
            json.dumps(report_obj, indent=2, sort_keys=True, allow_nan=False),
            file=out,
        )
    else:
        for diag in diagnostics:
            print(diag.render(), file=out)
        noun = "file" if files_checked == 1 else "files"
        suffix = ""
        if flow_reanalyzed is not None:
            suffix = f" (flow: {flow_reanalyzed} re-analyzed)"
        if diagnostics:
            print(
                f"{len(diagnostics)} violation(s) in {files_checked} {noun} "
                f"checked{suffix}",
                file=out,
            )
        else:
            print(f"clean: {files_checked} {noun} checked{suffix}", file=out)
    return 1 if diagnostics else 0
