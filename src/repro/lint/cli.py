"""``repro lint`` implementation (argparse wiring lives in repro.cli).

Output formats:

* ``human`` (default) — one ``path:line:col: RULE message`` per finding
  plus a summary line, matching the style of every other compiler-ish
  tool so editors and CI annotations can parse it.
* ``json`` — a strict-JSON report object::

      {
        "version": 1,
        "files_checked": 42,
        "clean": false,
        "counts": {"REP002": 2},
        "diagnostics": [
          {"rule": "REP002", "path": "...", "line": 10, "col": 5,
           "message": "..."}
        ]
      }

Exit codes: 0 clean, 1 diagnostics found, 2 usage error (unknown rule
id or missing path).
"""

from __future__ import annotations

import json
import sys
from collections import Counter
from typing import Sequence, TextIO

from .engine import run_paths
from .rules import rule_catalog

__all__ = ["run_lint"]

JSON_REPORT_VERSION = 1


def run_lint(
    paths: Sequence[str],
    *,
    output_format: str = "human",
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    list_rules: bool = False,
    stream: TextIO | None = None,
) -> int:
    """Run the linter; returns the process exit code."""
    out = stream if stream is not None else sys.stdout
    if list_rules:
        for rule_id, info in sorted(rule_catalog().items()):
            print(f"{rule_id}  {info['title']}", file=out)
        return 0
    try:
        diagnostics, files_checked = run_paths(paths, select=select, ignore=ignore)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if output_format == "json":
        report = {
            "version": JSON_REPORT_VERSION,
            "files_checked": files_checked,
            "clean": not diagnostics,
            "counts": dict(sorted(Counter(d.rule for d in diagnostics).items())),
            "diagnostics": [d.to_dict() for d in diagnostics],
        }
        print(
            json.dumps(report, indent=2, sort_keys=True, allow_nan=False),
            file=out,
        )
    else:
        for diag in diagnostics:
            print(diag.render(), file=out)
        noun = "file" if files_checked == 1 else "files"
        if diagnostics:
            print(
                f"{len(diagnostics)} violation(s) in {files_checked} {noun} checked",
                file=out,
            )
        else:
            print(f"clean: {files_checked} {noun} checked", file=out)
    return 1 if diagnostics else 0
