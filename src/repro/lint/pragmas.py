"""Suppression pragmas for the invariant linter.

Two forms are recognized:

* **Line pragma** — ``# lint: allow[REP003]`` (or a comma-separated
  list, ``# lint: allow[REP003,REP004]``) suppresses the named rules on
  the physical line carrying the pragma *and* on the line immediately
  below it, so a standalone pragma comment can sit above a statement
  that has no room for a trailing comment.
* **File pragma** — ``# lint: file-allow[REP007]`` anywhere in the file
  suppresses the named rules for the whole file.

Pragmas name specific rules on purpose: there is no blanket
``allow[*]``. A suppression should read as a narrow, reviewable claim
("this rename is a quarantine, not a durable write"), not as an opt-out
from linting.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_LINE_RE = re.compile(r"#\s*lint:\s*allow\[([A-Z0-9_,\s]+)\]")
_FILE_RE = re.compile(r"#\s*lint:\s*file-allow\[([A-Z0-9_,\s]+)\]")


def _split_rules(group: str) -> frozenset[str]:
    return frozenset(part.strip() for part in group.split(",") if part.strip())


@dataclass
class PragmaIndex:
    """Parsed suppressions for one source file."""

    #: rules suppressed for the entire file
    file_rules: frozenset[str] = frozenset()
    #: 1-based line number -> rules suppressed on that line
    line_rules: dict[int, frozenset[str]] = field(default_factory=dict)

    def suppresses(self, rule: str, line: int) -> bool:
        """True if ``rule`` is pragma-suppressed at ``line``."""
        if rule in self.file_rules:
            return True
        return rule in self.line_rules.get(line, frozenset())


def scan_pragmas(source: str) -> PragmaIndex:
    """Build the :class:`PragmaIndex` for ``source``.

    Scanning is line-based on raw text: a pragma inside a string
    literal would be honored too, which is acceptable for a linter
    whose pragmas are an explicit opt-in rarity.
    """
    file_rules: set[str] = set()
    line_rules: dict[int, set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "lint:" not in text:
            continue
        match = _FILE_RE.search(text)
        if match:
            file_rules.update(_split_rules(match.group(1)))
        match = _LINE_RE.search(text)
        if match:
            rules = _split_rules(match.group(1))
            # The pragma covers its own line and the next one, so a
            # standalone comment line can shield the statement below.
            line_rules.setdefault(lineno, set()).update(rules)
            line_rules.setdefault(lineno + 1, set()).update(rules)
    return PragmaIndex(
        file_rules=frozenset(file_rules),
        line_rules={line: frozenset(rules) for line, rules in line_rules.items()},
    )
