"""AST-based invariant linter for the repro codebase.

The library's correctness rests on conventions that ordinary tests can
only spot-check: seeded randomness everywhere (the paper's expectations
``E(W(X))`` / ``E(n)`` are verified against Monte-Carlo runs that must
be reproducible), durable writes only through
:mod:`repro.runtime.atomic`, strict JSON (no ``NaN`` / ``Infinity``
tokens) at every serialization boundary, and non-blocking code inside
the asyncio advisor server. :mod:`repro.lint` turns each convention
into a mechanical check so that a violation fails CI instead of waiting
for a reviewer to notice.

The linter is dependency-free (stdlib :mod:`ast` only) and exposed both
as a library (:func:`run_paths`) and as the ``repro lint`` subcommand.
Every rule is documented in ``docs/linting.md``; suppressions use
``# lint: allow[REPxxx]`` pragmas (see :mod:`repro.lint.pragmas`).
"""

from __future__ import annotations

from .diagnostics import Diagnostic
from .engine import iter_python_files, lint_file, lint_source, run_paths
from .rules import ALL_RULES, rule_catalog

__all__ = [
    "ALL_RULES",
    "Diagnostic",
    "iter_python_files",
    "lint_file",
    "lint_source",
    "rule_catalog",
    "run_paths",
]
