"""Shared plumbing for lint rules: file context, import resolution.

Every rule is an :class:`ast.NodeVisitor` subclass with a class-level
``id`` / ``title`` / ``rationale``. The engine instantiates one rule
per file, calls :meth:`Rule.check`, and collects
:class:`~repro.lint.diagnostics.Diagnostic` records from
``rule.diagnostics``.

The key shared facility is :meth:`FileContext.qualified_name`: it
resolves a ``Name`` / ``Attribute`` chain through the module's imports
to a canonical dotted path, so ``np.random.default_rng`` and
``from numpy.random import default_rng`` both resolve to
``numpy.random.default_rng`` while ``self.rng.random`` (rooted in a
local object, not an import) resolves to ``None`` and is never
misflagged.
"""

from __future__ import annotations

import ast

from ..diagnostics import Diagnostic


class FileContext:
    """Per-file state handed to every rule: path, source, AST, imports."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        #: Normalized path with forward slashes (stable for rule
        #: allowlists and diffable CI output on any platform).
        self.path = path.replace("\\", "/")
        self.source = source
        self.tree = tree
        #: local alias -> canonical dotted module/name path
        self.imports: dict[str, str] = {}
        self._collect_imports(tree)

    def _collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    # `import numpy.random` binds the root `numpy`;
                    # `import numpy.random as npr` binds the full path.
                    target = alias.name if alias.asname else local
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = f"{node.module}.{alias.name}"

    def qualified_name(self, node: ast.expr) -> str | None:
        """Canonical dotted name of a ``Name``/``Attribute`` chain.

        Returns ``None`` when the chain is not rooted in an imported
        module or name (e.g. ``self.rng.random``), or when the root
        name is not an import at all — locals shadow nothing here
        because only import bindings are tracked.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports.get(node.id)
        if root is None:
            # Builtins (`open`) resolve to themselves only when bare.
            return node.id if not parts else None
        parts.append(root)
        return ".".join(reversed(parts))


class Rule(ast.NodeVisitor):
    """Base class for one lint rule over one file."""

    #: e.g. ``"REP001"``
    id: str = ""
    #: one-line summary used by ``repro lint --list-rules``
    title: str = ""
    #: the invariant the rule protects (rendered in docs/linting.md)
    rationale: str = ""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.diagnostics: list[Diagnostic] = []

    def check(self) -> list[Diagnostic]:
        """Run the rule over the file; returns collected diagnostics."""
        self.visit(self.ctx.tree)
        return self.diagnostics

    def report(self, node: ast.AST, message: str) -> None:
        """Record a diagnostic anchored at ``node``."""
        self.diagnostics.append(
            Diagnostic(
                path=self.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule=self.id,
                message=message,
            )
        )


def call_keywords(node: ast.Call) -> dict[str, ast.expr]:
    """Explicit keyword arguments of a call (``**splat`` excluded)."""
    return {kw.arg: kw.value for kw in node.keywords if kw.arg is not None}


def has_splat_kwargs(node: ast.Call) -> bool:
    """True if the call forwards ``**kwargs`` (arguments unverifiable)."""
    return any(kw.arg is None for kw in node.keywords)


def literal_float(node: ast.expr) -> float | None:
    """The value of a float literal (handling unary ``-``), else None."""
    sign = 1.0
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        sign = -1.0 if isinstance(node.op, ast.USub) else 1.0
        node = node.operand
    if isinstance(node, ast.Constant) and type(node.value) is float:
        return sign * node.value
    return None
