"""REP007 — no ``==`` / ``!=`` against inexact float literals.

Comparing floats for equality against literals like ``0.1`` tests for
an exact bit pattern that arithmetic almost never produces (``0.1 +
0.2 != 0.3``); in this codebase such comparisons would silently break
threshold decisions and Monte-Carlo invariant checks. Use
``math.isclose`` / ``numpy.isclose`` with explicit tolerances, or
compare against the quantity the value was derived from.

Literals that are *exactly representable sentinels* — ``0.0``, ``1.0``,
``-1.0``, and ``0.5`` — are exempt: the codebase uses them as deliberate
degenerate-case guards (``sigma == 0.0`` selecting the deterministic
branch, ``shape == 1.0`` selecting the exponential special case), where
exact equality is precisely the intended semantics. Any other float
literal needs a tolerance or a ``# lint: allow[REP007]`` pragma
explaining why exactness is correct.
"""

from __future__ import annotations

import ast

from .base import Rule, literal_float

#: Exactly-representable values conventionally used as degenerate-case
#: guards; equality against them is deliberate, not a rounding hazard.
_EXACT_SENTINELS = frozenset({0.0, 1.0, -1.0, 0.5})


class FloatEqualityRule(Rule):
    id = "REP007"
    title = "no equality comparison against inexact float literals"
    rationale = (
        "Float equality against non-sentinel literals tests a bit pattern "
        "arithmetic rarely produces; thresholds and invariant checks need "
        "math.isclose with explicit tolerances."
    )

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                value = literal_float(side)
                if value is not None and value not in _EXACT_SENTINELS:
                    self.report(
                        side,
                        f"float equality against literal {value!r}: use "
                        "math.isclose/np.isclose with an explicit tolerance",
                    )
        self.generic_visit(node)
