"""REP005 — no blocking calls inside ``async def`` bodies.

The advisor service is a single-threaded asyncio event loop; one
blocking call (``time.sleep``, a synchronous socket, sync file I/O,
``subprocess`` waits) stalls *every* connection, defeating the
``max_inflight`` / ``idle_timeout`` protections the server's overload
story depends on. Blocking work belongs in
``loop.run_in_executor`` (see ``AdvisorServer._run_blocking``) or
behind the asyncio equivalents (``asyncio.sleep``,
``asyncio.open_connection``).

Only calls whose *immediately enclosing* function is ``async def`` are
flagged: a synchronous helper defined inside an async function is a
definition, not a call — it typically runs in an executor thread.

REP005 is the fast intra-function *pre-pass*. Under ``repro lint
--flow`` it is superseded by REP101 (:mod:`repro.lint.flow`), which
re-reports every REP005 finding at the same site and adds the
transitive ones — blocking calls reached through sync helpers across
file boundaries — so the per-file pass is skipped in flow mode to
avoid double reports. The blocking-call catalog below is shared with
the flow analysis; extend it here and both passes pick it up.
"""

from __future__ import annotations

import ast

from .base import FileContext, Rule

#: Calls that block the event loop when awaited nowhere.
_BLOCKING = {
    "time.sleep": "await asyncio.sleep(...)",
    "socket.socket": "asyncio.open_connection / loop.sock_* APIs",
    "socket.create_connection": "asyncio.open_connection",
    "open": "loop.run_in_executor (sync file I/O blocks the loop)",
    "os.fsync": "loop.run_in_executor",
    "subprocess.run": "asyncio.create_subprocess_exec",
    "subprocess.call": "asyncio.create_subprocess_exec",
    "subprocess.check_call": "asyncio.create_subprocess_exec",
    "subprocess.check_output": "asyncio.create_subprocess_exec",
    "urllib.request.urlopen": "loop.run_in_executor",
}


class AsyncBlockingRule(Rule):
    id = "REP005"
    title = "no blocking calls inside async def bodies"
    rationale = (
        "One blocking call in the asyncio advisor server stalls every "
        "connection; blocking work must run in an executor or use the "
        "asyncio-native equivalent."
    )

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._func_stack: list[ast.AST] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._func_stack.append(node)
        self.generic_visit(node)
        self._func_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._func_stack.append(node)
        self.generic_visit(node)
        self._func_stack.pop()

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._func_stack.append(node)
        self.generic_visit(node)
        self._func_stack.pop()

    def visit_Call(self, node: ast.Call) -> None:
        if self._func_stack and isinstance(self._func_stack[-1], ast.AsyncFunctionDef):
            name = self.ctx.qualified_name(node.func)
            if name in _BLOCKING:
                self.report(
                    node,
                    f"blocking `{name}` inside `async def` stalls the event "
                    f"loop; use {_BLOCKING[name]}",
                )
        self.generic_visit(node)
