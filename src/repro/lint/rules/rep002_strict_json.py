"""REP002 — every ``json.dumps`` / ``json.dump`` must pass
``allow_nan=False``.

Python's ``json`` module emits the non-standard tokens ``NaN`` /
``Infinity`` by default, producing output that *no strict JSON parser*
(including the advisor protocol's peers, Prometheus scrapers and
``jq``) will accept. The repo's contract is strict JSON at every
serialization boundary — protocol envelopes, cache persistence, trace
export — so a non-finite float smuggled into a payload must raise
``ValueError`` at the boundary instead of silently corrupting the wire
format (PR 3 fixed exactly such a leak in histogram stats).
"""

from __future__ import annotations

import ast

from .base import Rule, call_keywords, has_splat_kwargs

_DUMP_FUNCTIONS = frozenset({"json.dumps", "json.dump"})


class StrictJsonRule(Rule):
    id = "REP002"
    title = "json.dumps/json.dump must pass allow_nan=False"
    rationale = (
        "Python's json module emits non-standard NaN/Infinity tokens by "
        "default; strict peers reject them. A non-finite value must raise "
        "at the serialization boundary, not corrupt the wire format."
    )

    def visit_Call(self, node: ast.Call) -> None:
        name = self.ctx.qualified_name(node.func)
        if name in _DUMP_FUNCTIONS:
            short = name.rpartition(".")[2]
            keywords = call_keywords(node)
            allow_nan = keywords.get("allow_nan")
            if allow_nan is None:
                if not has_splat_kwargs(node):
                    self.report(
                        node,
                        f"`{short}` without allow_nan=False: NaN/Infinity "
                        "would serialize as non-standard JSON tokens",
                    )
                else:
                    self.report(
                        node,
                        f"`{short}` forwards **kwargs; pass an explicit "
                        "allow_nan=False so strictness is verifiable",
                    )
            elif not (
                isinstance(allow_nan, ast.Constant) and allow_nan.value is False
            ):
                self.report(
                    node,
                    f"`{short}` must pass literal allow_nan=False "
                    "(got a non-literal or truthy value)",
                )
        self.generic_visit(node)
