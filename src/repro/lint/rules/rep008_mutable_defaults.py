"""REP008 — no mutable default arguments.

A mutable default (``def f(xs=[])``) is evaluated once at definition
time and shared across *every* call — state leaks between invocations,
which in this codebase would couple supposedly independent simulation
runs and cache entries in exactly the way the determinism contract
forbids. Use ``None`` as the default and construct the container inside
the function body.
"""

from __future__ import annotations

import ast

from .base import Rule

_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "collections.defaultdict", "deque"}
)


def _is_mutable_literal(node: ast.expr, qualified: str | None) -> bool:
    if isinstance(
        node,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return True
    if isinstance(node, ast.Call):
        return qualified in _MUTABLE_CONSTRUCTORS
    return False


class MutableDefaultRule(Rule):
    id = "REP008"
    title = "no mutable default arguments"
    rationale = (
        "Mutable defaults are evaluated once and shared across calls; the "
        "leaked state couples runs that the determinism contract requires "
        "to be independent."
    )

    def _check_args(self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> None:
        args = node.args
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        for default in defaults:
            qualified = (
                self.ctx.qualified_name(default.func)
                if isinstance(default, ast.Call)
                else None
            )
            if _is_mutable_literal(default, qualified):
                self.report(
                    default,
                    "mutable default argument is shared across calls; "
                    "default to None and construct inside the body",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_args(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_args(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_args(node)
        self.generic_visit(node)
