"""REP004 — durations come from monotonic clocks, not ``time.time()``.

``time.time()`` is wall-clock: NTP slews, daylight-saving jumps and
manual adjustments make differences of two readings meaningless as a
duration — and this repo's duration measurements feed checkpoint-
duration telemetry, drift detection and latency histograms that the
advisor's decisions depend on. Durations must use ``time.monotonic()``
or ``time.perf_counter()``.

True epoch *timestamps* (cross-process correlation fields, "updated at"
manifest entries) legitimately need wall-clock time; annotate those
call sites with ``# lint: allow[REP004]``.
"""

from __future__ import annotations

import ast

from .base import Rule


class MonotonicTimeRule(Rule):
    id = "REP004"
    title = "time.time() is wall-clock; durations need monotonic clocks"
    rationale = (
        "Wall-clock differences are not durations (NTP slew, clock jumps); "
        "latency and checkpoint-duration telemetry drive advisor decisions "
        "and must use time.monotonic()/time.perf_counter()."
    )

    def visit_Call(self, node: ast.Call) -> None:
        if self.ctx.qualified_name(node.func) == "time.time":
            self.report(
                node,
                "`time.time()` read: use time.monotonic()/time.perf_counter() "
                "for durations (true timestamps: add `# lint: allow[REP004]`)",
            )
        self.generic_visit(node)
