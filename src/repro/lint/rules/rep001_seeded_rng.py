"""REP001 — all randomness must be explicitly seeded.

The paper's analytical expectations ``E(W(X))`` and ``E(n)`` are
validated against Monte-Carlo simulation; those runs are only evidence
if they are reproducible, which requires every sampling path to take
its seed (or generator) as a parameter. Fresh OS-entropy generators
(``np.random.default_rng()`` with no argument) and the global legacy
RNGs (``np.random.seed`` + module-level ``np.random.*`` samplers, the
stdlib ``random`` module functions) make results unrepeatable or, worse,
couple independent components through shared hidden state.
"""

from __future__ import annotations

import ast

from .base import Rule

#: Legacy module-level numpy samplers that draw from the hidden global
#: RandomState. (``numpy.random.default_rng`` / ``Generator`` /
#: ``SeedSequence`` are the supported, seedable entry points.)
_NUMPY_GLOBAL_SAMPLERS = frozenset(
    {
        "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
        "exponential", "gamma", "geometric", "gumbel", "hypergeometric",
        "laplace", "logistic", "lognormal", "normal", "pareto",
        "permutation", "poisson", "rand", "randint", "randn", "random",
        "random_sample", "ranf", "rayleigh", "sample", "shuffle",
        "standard_cauchy", "standard_exponential", "standard_gamma",
        "standard_normal", "standard_t", "triangular", "uniform",
        "vonmises", "wald", "weibull", "zipf",
    }
)

#: Stdlib ``random`` module-level functions (global hidden Mersenne
#: Twister). ``random.Random(seed)`` instances are fine.
_STDLIB_SAMPLERS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "shuffle", "triangular", "uniform", "vonmisesvariate",
        "weibullvariate",
    }
)

#: Constructors that must receive an explicit seed argument.
_SEEDED_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "random.Random",
        "random.SystemRandom",
    }
)


def _is_unseeded(node: ast.Call) -> bool:
    if not node.args and not node.keywords:
        return True
    if len(node.args) == 1 and not node.keywords:
        arg = node.args[0]
        return isinstance(arg, ast.Constant) and arg.value is None
    return False


class SeededRngRule(Rule):
    id = "REP001"
    title = "randomness must be seeded via an explicit parameter"
    rationale = (
        "Monte-Carlo validation of the paper's E(W(X)) / E(n) formulas is "
        "only evidence when runs are reproducible; unseeded generators and "
        "global-state RNGs make results unrepeatable."
    )

    def visit_Call(self, node: ast.Call) -> None:
        name = self.ctx.qualified_name(node.func)
        if name is not None:
            self._check_call(node, name)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call, name: str) -> None:
        if name in _SEEDED_CONSTRUCTORS:
            if _is_unseeded(node):
                self.report(
                    node,
                    f"unseeded `{name}()`: pass an explicit seed, "
                    "SeedSequence, or thread a Generator in as a parameter",
                )
            return
        if name in ("numpy.random.seed", "random.seed"):
            self.report(
                node,
                f"`{name}` mutates hidden global RNG state; construct a "
                "seeded Generator / random.Random and pass it explicitly",
            )
            return
        module, _, attr = name.rpartition(".")
        if module == "numpy.random" and attr in _NUMPY_GLOBAL_SAMPLERS:
            self.report(
                node,
                f"legacy global sampler `{name}`: use a seeded "
                "`numpy.random.Generator` passed in as a parameter",
            )
        elif module == "random" and attr in _STDLIB_SAMPLERS:
            self.report(
                node,
                f"global `{name}` draws from the hidden module-level RNG; "
                "use a seeded `random.Random(seed)` instance",
            )
