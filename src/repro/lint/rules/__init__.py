"""Rule registry: one module per rule, collected in id order."""

from __future__ import annotations

from .base import FileContext, Rule
from .rep001_seeded_rng import SeededRngRule
from .rep002_strict_json import StrictJsonRule
from .rep003_atomic_writes import AtomicWriteRule
from .rep004_monotonic_time import MonotonicTimeRule
from .rep005_async_blocking import AsyncBlockingRule
from .rep006_spec_override import SpecOverrideRule
from .rep007_float_equality import FloatEqualityRule
from .rep008_mutable_defaults import MutableDefaultRule

__all__ = ["ALL_RULES", "FileContext", "Rule", "rule_catalog"]

ALL_RULES: tuple[type[Rule], ...] = (
    SeededRngRule,
    StrictJsonRule,
    AtomicWriteRule,
    MonotonicTimeRule,
    AsyncBlockingRule,
    SpecOverrideRule,
    FloatEqualityRule,
    MutableDefaultRule,
)


def rule_catalog() -> dict[str, dict[str, str]]:
    """``{rule_id: {"title": ..., "rationale": ...}}`` for docs and CLI."""
    return {
        rule.id: {"title": rule.title, "rationale": rule.rationale}
        for rule in ALL_RULES
    }
