"""REP003 — durable writes only through :mod:`repro.runtime.atomic`.

A bare ``open(path, "w")`` + ``os.replace`` / ``os.rename`` sequence
looks atomic but is not durable: without the fsync-before-rename and
directory-fsync steps, a crash can leave a zero-length or rolled-back
file — exactly the torn states the checkpoint store's recovery matrix
exists to prevent. All tmp+fsync+rename protocols live in
:mod:`repro.runtime.atomic` (the one audited implementation, with fault
hooks covering every crash interleaving); everything else must call it.

Renames that are *not* durable-write protocols — quarantining a corrupt
file to ``*.corrupt`` for post-mortem — are allowlisted with a
``# lint: allow[REP003]`` pragma at the call site.
"""

from __future__ import annotations

import ast

from .base import Rule

#: The one module allowed to implement the rename protocol directly.
_IMPLEMENTATION = "repro/runtime/atomic.py"

_RENAMES = frozenset({"os.replace", "os.rename", "os.renames", "pathlib.Path.rename"})


class AtomicWriteRule(Rule):
    id = "REP003"
    title = "rename-based write protocols only via repro.runtime.atomic"
    rationale = (
        "tmp+fsync+rename is only crash-safe when every step (including the "
        "directory fsync) is present; repro.runtime.atomic is the single "
        "audited implementation with fault-hook coverage of each crash point."
    )

    def visit_Call(self, node: ast.Call) -> None:
        if not self.ctx.path.endswith(_IMPLEMENTATION):
            name = self.ctx.qualified_name(node.func)
            if name in _RENAMES:
                self.report(
                    node,
                    f"`{name}` outside repro.runtime.atomic: use "
                    "atomic_write_bytes/atomic_write_json for durable writes "
                    "(quarantine renames: add `# lint: allow[REP003]`)",
                )
        self.generic_visit(node)
