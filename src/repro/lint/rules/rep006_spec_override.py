"""REP006 — concrete ``Distribution`` subclasses must override ``spec()``.

``Distribution.spec()`` is the canonical law-spec string used as the
content-addressed key of the :class:`~repro.service.cache.PolicyCache`
and as the ``DurationRecorder`` grouping key; a concrete law without it
silently loses caching, server-side advice and drift tracking the first
time someone routes it through the service. The base implementation
raises ``NotImplementedError``, so the omission only surfaces at
runtime — this rule surfaces it at lint time.

Abstract intermediate bases (any class whose body still contains
``@abstractmethod`` definitions) are exempt. Laws that genuinely live
outside the CLI spec grammar (empirical, heterogeneous sums, FFT
convolutions) carry a ``# lint: allow[REP006]`` pragma on the class
line, turning "has no spec" from an accident into a reviewed decision.
"""

from __future__ import annotations

import ast

from .base import Rule

_BASE_NAMES = frozenset(
    {"Distribution", "ContinuousDistribution", "DiscreteDistribution"}
)


def _last_attr(node: ast.expr) -> str | None:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_abstract(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for deco in stmt.decorator_list:
                target = deco.func if isinstance(deco, ast.Call) else deco
                if _last_attr(target) in ("abstractmethod", "abstractproperty"):
                    return True
    return False


class SpecOverrideRule(Rule):
    id = "REP006"
    title = "concrete Distribution subclasses must override spec()"
    rationale = (
        "spec() is the PolicyCache content-address and the drift-detector "
        "grouping key; a concrete law without it fails at runtime the first "
        "time it is routed through the advisor service."
    )

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        base_names = {_last_attr(base) for base in node.bases}
        if base_names & _BASE_NAMES and not _is_abstract(node):
            has_spec = any(
                isinstance(stmt, ast.FunctionDef) and stmt.name == "spec"
                for stmt in node.body
            )
            if not has_spec:
                self.report(
                    node,
                    f"concrete Distribution subclass `{node.name}` does not "
                    "override spec(); laws outside the CLI grammar need "
                    "`# lint: allow[REP006]` with a rationale",
                )
        self.generic_visit(node)
