"""Lint engine: file discovery, rule execution, pragma filtering.

The engine is deliberately boring: parse each file once with
:mod:`ast`, run every selected rule's visitor over the tree, drop
diagnostics suppressed by pragmas, and return the sorted remainder.
A file that does not parse yields a single ``REP000`` diagnostic
(carrying the ``SyntaxError`` location) instead of crashing the run —
an unparseable file can hide any number of violations and must fail
the build just as loudly as a real finding.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, Iterator, Sequence

from .diagnostics import Diagnostic
from .pragmas import scan_pragmas
from .rules import ALL_RULES, FileContext, Rule

__all__ = ["iter_python_files", "lint_file", "lint_source", "run_paths", "select_rules"]

#: Directory names never descended into during discovery.
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".mypy_cache", ".pytest_cache", "build", "dist"}
)


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Yield ``.py`` files under ``paths`` (files listed directly, or
    recursive discovery for directories), sorted for stable output."""
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in _SKIP_DIRS and not d.endswith(".egg-info")
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        yield os.path.join(dirpath, name)
        else:
            yield path


def select_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> tuple[type[Rule], ...]:
    """Resolve ``--select`` / ``--ignore`` into a rule-class tuple.

    Unknown rule ids raise ``ValueError`` — a typo in a CI invocation
    must not silently lint nothing.
    """
    known = {rule.id for rule in ALL_RULES}
    for requested in list(select or []) + list(ignore or []):
        if requested not in known:
            raise ValueError(
                f"unknown rule id {requested!r}; known: {', '.join(sorted(known))}"
            )
    chosen = ALL_RULES
    if select:
        wanted = set(select)
        chosen = tuple(rule for rule in chosen if rule.id in wanted)
    if ignore:
        dropped = set(ignore)
        chosen = tuple(rule for rule in chosen if rule.id not in dropped)
    return chosen


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    rules: Sequence[type[Rule]] | None = None,
) -> list[Diagnostic]:
    """Lint one source string; ``path`` feeds diagnostics and per-path
    rule allowlists (e.g. REP003's atomic.py exemption)."""
    norm_path = path.replace("\\", "/")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=norm_path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) or 1,
                rule="REP000",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = FileContext(norm_path, source, tree)
    pragmas = scan_pragmas(source)
    diagnostics: list[Diagnostic] = []
    for rule_cls in rules if rules is not None else ALL_RULES:
        for diag in rule_cls(ctx).check():
            if not pragmas.suppresses(diag.rule, diag.line):
                diagnostics.append(diag)
    return sorted(diagnostics)


def lint_file(
    path: str, *, rules: Sequence[type[Rule]] | None = None
) -> list[Diagnostic]:
    """Lint one file from disk (UTF-8, errors replaced)."""
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        source = fh.read()
    return lint_source(source, path, rules=rules)


def run_paths(
    paths: Sequence[str],
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> tuple[list[Diagnostic], int]:
    """Lint every python file under ``paths``.

    Returns ``(diagnostics, files_checked)``; diagnostics are sorted by
    (path, line, col, rule). Missing paths raise ``OSError`` so CI
    misconfigurations (a renamed directory) fail instead of passing
    vacuously.
    """
    for path in paths:
        if not os.path.exists(path):
            raise FileNotFoundError(f"lint path does not exist: {path}")
    rules = select_rules(select, ignore)
    diagnostics: list[Diagnostic] = []
    files_checked = 0
    for file_path in iter_python_files(paths):
        diagnostics.extend(lint_file(file_path, rules=rules))
        files_checked += 1
    return sorted(diagnostics), files_checked
