"""Per-file extraction: one parsed module -> one :class:`ModuleSummary`.

Extraction is the only phase of the flow pass that touches an AST; it
must therefore capture *everything* the linker could need as plain
data. The extractor resolves names as far as one file allows:

* imports (including relative imports, resolved against the module's
  package) canonicalize to dotted paths;
* ``self``/``cls`` bind to the enclosing class, and attribute chains
  on instances become ``m:`` method references for the linker;
* local variables holding constructor results (``rec = Recorder()``),
  annotated parameters, and bare function aliases (``fn = helper``)
  are tracked so calls through them still resolve;
* a light intra-function taint pass records which non-finite constants
  and call results flow into ``return`` expressions and strict-JSON
  sink arguments (REP103), with ``math.isfinite``-style checks acting
  as sanitizers.

What extraction deliberately does **not** do: descend into ``lambda``
bodies (a lambda is a definition, mirroring REP005's immediate-
enclosure semantics), attribute module-level statements to any
function, or guess at the types of arbitrary call results.
"""

from __future__ import annotations

import ast
import math
import os
from typing import Iterator

from ..pragmas import scan_pragmas
from ..rules.rep001_seeded_rng import (
    _NUMPY_GLOBAL_SAMPLERS,
    _SEEDED_CONSTRUCTORS,
    _STDLIB_SAMPLERS,
    _is_unseeded,
)
from .model import (
    CallFact,
    ClassInfo,
    FunctionSummary,
    ModuleSummary,
    SinkFact,
    SourceFact,
)

__all__ = ["extract_module", "module_name_for"]

#: Strict-JSON sinks for REP103 (dotted, post-import-resolution).
JSON_SINKS = frozenset(
    {
        "json.dumps",
        "json.dump",
        "repro.runtime.atomic.canonical_json_bytes",
        "repro.runtime.atomic.atomic_write_json",
    }
)

#: Attribute constants that are non-finite floats.
_NONFINITE_ATTRS = frozenset(
    {
        "math.nan",
        "math.inf",
        "cmath.nan",
        "cmath.inf",
        "numpy.nan",
        "numpy.inf",
        "numpy.NAN",
        "numpy.NaN",
        "numpy.Inf",
        "numpy.Infinity",
        "numpy.NINF",
        "numpy.PINF",
    }
)

#: Finiteness checks that sanitize a name for REP103.
_FINITE_GUARDS = frozenset(
    {
        "math.isfinite",
        "math.isnan",
        "math.isinf",
        "numpy.isfinite",
        "numpy.isnan",
        "numpy.isinf",
    }
)

#: Calls whose result is a string/int — float taint does not survive.
_STRINGIFIERS = frozenset({"str", "repr", "format", "int", "bool", "len"})

_RENAMES = frozenset({"os.rename", "os.replace", "os.renames"})


def module_name_for(path: str) -> str:
    """Dotted module name of ``path``, derived from the package layout.

    Walks parent directories for as long as they contain an
    ``__init__.py``, so ``src/repro/service/server.py`` maps to
    ``repro.service.server`` regardless of the lint invocation's CWD.
    Loose scripts (``benchmarks/bench_service.py``) map to their stem.
    """
    abs_path = os.path.abspath(path)
    directory, filename = os.path.split(abs_path)
    stem = filename[:-3] if filename.endswith(".py") else filename
    parts: list[str] = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, pkg = os.path.split(directory)
        if not pkg:
            break
        parts.insert(0, pkg)
    return ".".join(parts) if parts else stem


def _resolve_relative(module: str, is_package: bool, level: int, target: str | None) -> str | None:
    """Absolute dotted base of a ``from ... import`` with ``level`` dots."""
    parts = module.split(".")
    # level=1 names the current package: the module itself if it *is* a
    # package (__init__.py), its parent otherwise.
    drop = level if not is_package else level - 1
    if drop >= len(parts) and not (drop == len(parts) and is_package):
        return None  # beyond the project root: unresolvable
    base_parts = parts[: len(parts) - drop]
    if target:
        base_parts.append(target)
    return ".".join(base_parts) if base_parts else None


class _ModuleContext:
    """Shared per-file state: imports, module-level names, classes."""

    def __init__(self, path: str, module: str, tree: ast.Module) -> None:
        self.path = path
        self.module = module
        self.is_package = os.path.basename(path) == "__init__.py"
        self.imports: dict[str, str] = {}
        #: module-level def/class names -> scope path within the module
        self.module_defs: dict[str, str] = {}
        #: module-level instance bindings, name -> dotted class
        self.global_insts: dict[str, str] = {}
        self._collect_imports(tree)
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                self.module_defs[node.name] = node.name
        for node in tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    cls = self.constructor_class(node.value)
                    if cls is not None:
                        self.global_insts[target.id] = cls

    def _collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else local
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0:
                    base = node.module
                else:
                    base = _resolve_relative(
                        self.module, self.is_package, node.level, node.module
                    )
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = f"{base}.{alias.name}"

    def dotted_for(self, root: str) -> str | None:
        """Canonical dotted path for a bare root name, if known."""
        if root in self.imports:
            return self.imports[root]
        if root in self.module_defs:
            return f"{self.module}.{self.module_defs[root]}"
        return None

    def constructor_class(self, expr: ast.expr) -> str | None:
        """Dotted class of ``Cls(...)`` when ``Cls`` looks like a class.

        Uses the PEP 8 capitalized-name convention to separate class
        constructions from plain calls; the linker re-verifies that the
        target really is a class before resolving methods through it,
        so a misbinding only yields an unresolved reference.
        """
        if not isinstance(expr, ast.Call):
            return None
        dotted = self._dotted_expr(expr.func)
        if dotted is None:
            return None
        last = dotted.rpartition(".")[2]
        if last[:1].isupper():
            return dotted
        return None

    def _dotted_expr(self, node: ast.expr) -> str | None:
        """Dotted path of a Name/Attribute chain rooted in an import,
        a module-level def, or a builtin (bare names only)."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.dotted_for(node.id)
        if root is None:
            return node.id if not parts else None
        parts.append(root)
        return ".".join(reversed(parts))

    def annotation_class(self, annotation: ast.expr | None) -> str | None:
        """Dotted class named by a parameter annotation, if resolvable.

        Handles ``X``, ``mod.X``, ``X | None`` and ``Optional[X]``;
        generics and strings are skipped (a lint does not need them).
        """
        if annotation is None:
            return None
        if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
            return self.annotation_class(annotation.left) or self.annotation_class(
                annotation.right
            )
        if isinstance(annotation, ast.Subscript):
            dotted = self._dotted_expr(annotation.value)
            if dotted in ("typing.Optional", "Optional"):
                return self.annotation_class(annotation.slice)
            return None
        if isinstance(annotation, ast.Constant) and annotation.value is None:
            return None
        dotted = self._dotted_expr(annotation)
        if dotted is None or "." not in dotted:
            # a bare name that resolved to a builtin (e.g. ``float``)
            # or stayed unresolved: not a project class
            if dotted is not None and dotted in self.module_defs:
                return f"{self.module}.{dotted}"
            return None
        last = dotted.rpartition(".")[2]
        return dotted if last[:1].isupper() else None


def _iter_scopes(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef, str | None]]:
    """Yield ``(scope_path, func_node, enclosing_class_scope)`` for every
    function/method in the module, in source order.

    Nested functions get dotted scope paths (``outer.inner``); functions
    nested inside *methods* keep the class on their path. Lambdas are
    not functions here.
    """

    def walk(
        body: list[ast.stmt], prefix: str, cls: str | None
    ) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef, str | None]]:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope = f"{prefix}{node.name}"
                yield scope, node, cls
                yield from walk(node.body, f"{scope}.", cls)
            elif isinstance(node, ast.ClassDef):
                scope = f"{prefix}{node.name}"
                yield from walk(node.body, f"{scope}.", scope)

    yield from walk(tree.body, "", None)


def _iter_classes(tree: ast.Module) -> Iterator[tuple[str, ast.ClassDef]]:
    def walk(body: list[ast.stmt], prefix: str) -> Iterator[tuple[str, ast.ClassDef]]:
        for node in body:
            if isinstance(node, ast.ClassDef):
                scope = f"{prefix}{node.name}"
                yield scope, node
                yield from walk(node.body, f"{scope}.")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from walk(node.body, f"{prefix}")

    yield from walk(tree.body, "")


def _nonfinite_const(ctx: _ModuleContext, node: ast.expr) -> str | None:
    """Description of a non-finite constant expression, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        if not math.isfinite(node.value):
            return repr(node.value)
        return None
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        inner = _nonfinite_const(ctx, node.operand)
        return f"-{inner}" if inner is not None and isinstance(node.op, ast.USub) else inner
    dotted = ctx._dotted_expr(node)
    if dotted in _NONFINITE_ATTRS:
        return dotted
    if isinstance(node, ast.Call):
        callee = ctx._dotted_expr(node.func)
        if callee == "float" and len(node.args) == 1 and not node.keywords:
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                text = arg.value.strip().lower().lstrip("+-")
                if text in ("nan", "inf", "infinity"):
                    return f'float("{arg.value.strip()}")'
    return None


class _FunctionExtractor:
    """Extract one function's :class:`FunctionSummary`."""

    def __init__(
        self,
        ctx: _ModuleContext,
        scope: str,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_scope: str | None,
    ) -> None:
        self.ctx = ctx
        self.scope = scope
        self.node = node
        self.own_class = f"{ctx.module}.{class_scope}" if class_scope else None
        args = node.args
        self.params: list[str] = [
            a.arg for a in args.posonlyargs + args.args + args.kwonlyargs
        ]
        #: name -> ("func", ref) | ("inst", dotted_class)
        self.env: dict[str, tuple[str, str]] = {}
        self.param_calls: set[str] = set()
        self.calls: list[CallFact] = []
        self.ret_consts: list[SourceFact] = []
        self.ret_calls: list[SourceFact] = []
        self.sinks: list[SinkFact] = []
        #: name -> (consts, call refs) flowing into it
        self.taint: dict[str, tuple[list[SourceFact], list[SourceFact]]] = {}
        self.guarded: set[str] = set()
        self._lock_stack: list[str] = []
        self._bind_params()
        self._collect_guards()

    # -- environment -----------------------------------------------------

    def _bind_params(self) -> None:
        args = self.node.args
        all_args = args.posonlyargs + args.args + args.kwonlyargs
        if self.own_class and all_args and all_args[0].arg in ("self", "cls"):
            self.env[all_args[0].arg] = ("inst", self.own_class)
            all_args = all_args[1:]
        for arg in all_args:
            cls = self.ctx.annotation_class(arg.annotation)
            if cls is not None:
                self.env[arg.arg] = ("inst", cls)

    def _collect_guards(self) -> None:
        """Names checked with isfinite/isnan anywhere in the function
        count as guarded: a presence check is evidence the author
        thought about non-finite values on that path."""
        for sub in ast.walk(self.node):
            if isinstance(sub, ast.Call):
                dotted = self.ctx._dotted_expr(sub.func)
                if dotted in _FINITE_GUARDS:
                    for arg in sub.args:
                        if isinstance(arg, ast.Name):
                            self.guarded.add(arg.id)

    def _resolve_ref(self, node: ast.expr) -> str | None:
        """Resolve a Name/Attribute chain to a reference string."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.reverse()
        root = node.id
        bound = self.env.get(root)
        if bound is not None:
            kind, payload = bound
            if kind == "inst":
                if parts:
                    return f"m:{payload}:{'.'.join(parts)}"
                return f"i:{payload}"
            if kind == "func":
                return payload if not parts else None
        if root in self.ctx.global_insts and root not in self.params:
            payload = self.ctx.global_insts[root]
            if parts:
                return f"m:{payload}:{'.'.join(parts)}"
            return f"i:{payload}"
        dotted = self.ctx.dotted_for(root)
        if dotted is not None:
            return "d:" + ".".join([dotted] + parts)
        if not parts and root in self.params:
            return f"p:{root}"
        if not parts:
            # bare name: builtin (open, float, print) or an untracked
            # local — builtins matter for REP101/REP104, so keep them.
            return f"d:{root}"
        return None

    # -- taint helpers (REP103) ------------------------------------------

    def _expr_sources(
        self, node: ast.expr
    ) -> tuple[list[SourceFact], list[SourceFact]]:
        """(non-finite consts, call refs) flowing out of ``node``."""
        consts: list[SourceFact] = []
        calls: list[SourceFact] = []
        self._collect_sources(node, consts, calls)
        return consts, calls

    def _collect_sources(
        self, node: ast.expr, consts: list[SourceFact], calls: list[SourceFact]
    ) -> None:
        desc = _nonfinite_const(self.ctx, node)
        if desc is not None:
            consts.append(SourceFact(desc, node.lineno))
            return
        if isinstance(node, ast.Name):
            if node.id in self.guarded:
                return
            tainted = self.taint.get(node.id)
            if tainted is not None:
                consts.extend(tainted[0])
                calls.extend(tainted[1])
            return
        if isinstance(node, ast.Call):
            callee = self._resolve_ref(node.func)
            if callee is not None and callee.startswith("d:"):
                last = callee[2:].rpartition(".")[2]
                if callee[2:] in _FINITE_GUARDS or last in _STRINGIFIERS:
                    return
            if callee is not None and not callee.startswith(("i:", "p:")):
                calls.append(SourceFact(callee, node.lineno))
            for arg in node.args:
                self._collect_sources(arg, consts, calls)
            for kw in node.keywords:
                self._collect_sources(kw.value, consts, calls)
            return
        if isinstance(node, (ast.JoinedStr, ast.FormattedValue, ast.Compare, ast.BoolOp)):
            return  # stringified or boolean: float taint does not survive
        if isinstance(node, ast.Lambda):
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._collect_sources(child, consts, calls)

    def _record_assign(self, target: ast.expr, value: ast.expr) -> None:
        if not isinstance(target, ast.Name):
            return
        name = target.id
        # rebinding invalidates any previous knowledge about the name
        self.env.pop(name, None)
        self.taint.pop(name, None)
        cls = self.ctx.constructor_class(value)
        if cls is not None:
            self.env[name] = ("inst", cls)
        elif isinstance(value, (ast.Name, ast.Attribute)):
            ref = self._resolve_ref(value)
            if ref is not None and ref.startswith(("d:", "m:")):
                self.env[name] = ("func", ref)
            elif ref is not None and ref.startswith("i:"):
                self.env[name] = ("inst", ref[2:])
        consts, calls = self._expr_sources(value)
        if consts or calls:
            self.taint[name] = (consts, calls)

    # -- the walk --------------------------------------------------------

    def run(self) -> FunctionSummary:
        self._walk_stmts(self.node.body)
        return FunctionSummary(
            name=self.scope,
            line=self.node.lineno,
            is_async=isinstance(self.node, ast.AsyncFunctionDef),
            params=tuple(self.params),
            param_calls=tuple(sorted(self.param_calls)),
            calls=tuple(self.calls),
            ret_consts=tuple(self.ret_consts),
            ret_calls=tuple(self.ret_calls),
            sinks=tuple(self.sinks),
        )

    def _walk_stmts(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # nested defs are separate functions; bind the local name so
            # later calls through it resolve
            self.env[stmt.name] = ("func", f"d:{self.ctx.module}.{self.scope}.{stmt.name}")
            return
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, ast.Assign):
            self._visit_expr(stmt.value)
            for target in stmt.targets:
                self._record_assign(target, stmt.value)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._visit_expr(stmt.value)
                self._record_assign(stmt.target, stmt.value)
            elif isinstance(stmt.target, ast.Name):
                cls = self.ctx.annotation_class(stmt.annotation)
                if cls is not None:
                    self.env[stmt.target.id] = ("inst", cls)
            return
        if isinstance(stmt, ast.AugAssign):
            self._visit_expr(stmt.value)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._visit_expr(stmt.value)
                consts, calls = self._expr_sources(stmt.value)
                self.ret_consts.extend(consts)
                self.ret_calls.extend(calls)
            return
        if isinstance(stmt, ast.AsyncWith):
            refs = [
                self._resolve_ref(item.context_expr)
                for item in stmt.items
                if not isinstance(item.context_expr, ast.Call)
            ]
            lock_ref = next(
                (r for r in refs if r is not None and r.startswith(("i:", "m:"))), None
            )
            for item in stmt.items:
                self._visit_expr(item.context_expr)
            if lock_ref is not None:
                self._lock_stack.append(lock_ref)
                self._walk_stmts(stmt.body)
                self._lock_stack.pop()
            else:
                self._walk_stmts(stmt.body)
            return
        # generic: visit expressions in this statement, recurse into
        # nested statement lists (If/For/While/With/Try/Match...)
        for field_value in ast.iter_fields(stmt):
            _, value = field_value
            if isinstance(value, ast.expr):
                self._visit_expr(value)
            elif isinstance(value, list):
                exprs = [v for v in value if isinstance(v, ast.expr)]
                for expr in exprs:
                    self._visit_expr(expr)
                stmts = [v for v in value if isinstance(v, ast.stmt)]
                if stmts:
                    self._walk_stmts(stmts)
                for item in value:
                    if isinstance(item, ast.withitem):
                        self._visit_expr(item.context_expr)
                    elif isinstance(item, ast.excepthandler):
                        self._walk_stmts(item.body)
                    elif isinstance(item, ast.match_case):
                        self._walk_stmts(item.body)

    def _visit_expr(self, node: ast.expr, awaited: bool = False) -> None:
        if isinstance(node, ast.Await):
            self._visit_expr(node.value, awaited=True)
            return
        if isinstance(node, ast.Lambda):
            return  # a definition, not a call: REP005 parity
        if isinstance(node, ast.Call):
            self._record_call(node, awaited)
            self._visit_expr(node.func)
            for arg in node.args:
                self._visit_expr(arg)
            for kw in node.keywords:
                self._visit_expr(kw.value)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._visit_expr(child)
            elif isinstance(child, ast.comprehension):
                self._visit_expr(child.iter)
                for cond in child.ifs:
                    self._visit_expr(cond)

    def _record_call(self, node: ast.Call, awaited: bool) -> None:
        ref = self._resolve_ref(node.func)
        if ref is None or ref.startswith("i:"):
            return
        if ref.startswith("p:"):
            self.param_calls.add(ref[2:])
        dotted = ref[2:] if ref.startswith("d:") else None
        rng_unseeded = False
        if dotted is not None:
            if dotted in _SEEDED_CONSTRUCTORS:
                rng_unseeded = _is_unseeded(node)
            else:
                module, _, attr = dotted.rpartition(".")
                if module == "numpy.random" and attr in _NUMPY_GLOBAL_SAMPLERS:
                    rng_unseeded = True
                elif module == "random" and attr in _STDLIB_SAMPLERS:
                    rng_unseeded = True
                elif dotted in ("numpy.random.seed", "random.seed"):
                    rng_unseeded = True
        write_mode = False
        if dotted in ("open", "io.open"):
            mode: ast.expr | None = None
            if len(node.args) >= 2:
                mode = node.args[1]
            else:
                for kw in node.keywords:
                    if kw.arg == "mode":
                        mode = kw.value
            if (
                mode is not None
                and isinstance(mode, ast.Constant)
                and isinstance(mode.value, str)
                and any(ch in mode.value for ch in "wax+")
            ):
                write_mode = True
        func_args: list[tuple[int, str]] = []
        for pos, arg in enumerate(node.args):
            if isinstance(arg, (ast.Name, ast.Attribute)):
                arg_ref = self._resolve_ref(arg)
                if arg_ref is not None and arg_ref.startswith(("d:", "m:")):
                    func_args.append((pos, arg_ref))
        if dotted is not None and dotted in JSON_SINKS:
            consts: list[SourceFact] = []
            call_sources: list[SourceFact] = []
            for arg in node.args:
                self._collect_sources(arg, consts, call_sources)
            for kw in node.keywords:
                self._collect_sources(kw.value, consts, call_sources)
            if consts or call_sources:
                self.sinks.append(
                    SinkFact(
                        line=node.lineno,
                        sink=dotted,
                        consts=tuple(dict.fromkeys(consts)),
                        calls=tuple(dict.fromkeys(call_sources)),
                    )
                )
        self.calls.append(
            CallFact(
                line=node.lineno,
                callee=ref,
                awaited=awaited,
                rng_unseeded=rng_unseeded,
                write_mode=write_mode,
                lock_ref=self._lock_stack[-1] if self._lock_stack else None,
                func_args=tuple(func_args),
            )
        )


def _extract_class(ctx: _ModuleContext, scope: str, node: ast.ClassDef) -> ClassInfo:
    bases: list[str] = []
    for base in node.bases:
        dotted = ctx._dotted_expr(base)
        if dotted is not None:
            bases.append(dotted if "." in dotted else (ctx.dotted_for(dotted) or dotted))
    methods = [
        item.name
        for item in node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    attr_types: dict[str, str] = {}
    ordered = sorted(
        (item for item in node.body if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))),
        key=lambda item: (item.name != "__init__",),
    )
    for method in ordered:
        params: dict[str, str] = {}
        args = method.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            cls = ctx.annotation_class(arg.annotation)
            if cls is not None:
                params[arg.arg] = cls
        for sub in ast.walk(method):
            if not (isinstance(sub, ast.Assign) and len(sub.targets) == 1):
                continue
            target = sub.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            if target.attr in attr_types:
                continue
            cls_ref = ctx.constructor_class(sub.value)
            if cls_ref is None and isinstance(sub.value, ast.Name):
                cls_ref = params.get(sub.value.id)
            if cls_ref is not None:
                attr_types[target.attr] = cls_ref
    return ClassInfo(
        name=scope,
        line=node.lineno,
        bases=tuple(bases),
        methods=tuple(methods),
        attr_types=tuple(sorted(attr_types.items())),
    )


def extract_module(path: str, source: str, module: str | None = None) -> ModuleSummary:
    """Parse ``source`` and extract its :class:`ModuleSummary`.

    Unparseable files produce a summary carrying ``parse_error`` and no
    functions — the per-file pass reports REP000 for them.
    """
    norm_path = path.replace("\\", "/")
    mod = module if module is not None else module_name_for(path)
    pragmas = scan_pragmas(source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return ModuleSummary(
            path=norm_path,
            module=mod,
            pragmas=pragmas,
            parse_error=(exc.lineno or 1, (exc.offset or 0) or 1, exc.msg or "syntax error"),
        )
    ctx = _ModuleContext(norm_path, mod, tree)
    functions = tuple(
        _FunctionExtractor(ctx, scope, node, cls).run()
        for scope, node, cls in _iter_scopes(tree)
    )
    classes = tuple(
        _extract_class(ctx, scope, node) for scope, node in _iter_classes(tree)
    )
    return ModuleSummary(
        path=norm_path,
        module=mod,
        functions=functions,
        classes=classes,
        imports=dict(ctx.imports),
        pragmas=pragmas,
    )
