"""Link phase: summaries -> symbol table, call graph, fixpoint facts.

The linker never parses source. It consumes the :class:`ModuleSummary`
set produced by :mod:`repro.lint.flow.project` (fresh or from the
summary cache) and builds:

* a project-wide **symbol table** — dotted name -> function/class,
  following re-exports through package ``__init__`` import maps and
  inherited methods through a base-class walk;
* the **call graph** — per-function edge lists with the call line, the
  awaited/lock context, and synthetic edges for first-order callables
  (``runner(task)`` where ``runner`` calls its parameter);
* **fixpoint facts** — boolean per-function properties (may-block,
  may-sample-unseeded, may-mutate-raw, may-return-non-finite,
  awaits-slow-op) propagated along call edges until stable, each
  carrying a witness chain for diagnostics.

Resolution is deliberately conservative: a reference that cannot be
resolved inside the project produces no edge (and therefore no
finding), never a guess.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from ..rules.rep005_async_blocking import _BLOCKING
from .model import ClassInfo, FunctionSummary, ModuleSummary

__all__ = [
    "Edge",
    "ExternalCall",
    "FunctionNode",
    "Linker",
    "Witness",
]

#: Raw file-mutation primitives for REP104 (write-mode ``open`` calls
#: are detected separately via :attr:`CallFact.write_mode`).
RAW_RENAMES = frozenset({"os.rename", "os.replace", "os.renames"})

#: Awaitables that are slow by nature — network, timers, executor hops.
SLOW_EXTERNAL = frozenset(
    {
        "asyncio.sleep",
        "asyncio.wait_for",
        "asyncio.wait",
        "asyncio.gather",
        "asyncio.open_connection",
        "asyncio.start_server",
        "asyncio.to_thread",
    }
)

#: asyncio primitives whose acquisition spans an ``async with`` block.
ASYNC_LOCK_CLASSES = frozenset(
    {
        "asyncio.Lock",
        "asyncio.Condition",
        "asyncio.Semaphore",
        "asyncio.BoundedSemaphore",
    }
)


@dataclass(frozen=True)
class Edge:
    """A resolved internal call: ``caller`` -> :attr:`target`."""

    line: int
    target: str  # function key of the callee
    display: str  # callee name as shown in witness chains
    awaited: bool
    lock: str | None  # resolved lock class held across the call
    #: True for a first-order callable passed as an argument — the
    #: "call" happens inside the callee, but responsibility (and the
    #: report line) belongs to the caller that supplied the function.
    synthetic: bool = False


@dataclass(frozen=True)
class ExternalCall:
    """A call that resolves outside the project (stdlib, third-party)."""

    line: int
    dotted: str
    awaited: bool
    lock: str | None
    rng_unseeded: bool
    write_mode: bool


@dataclass
class FunctionNode:
    """One function with its resolved outgoing calls."""

    key: str
    mod: ModuleSummary
    fn: FunctionSummary
    edges: list[Edge]
    externals: list[ExternalCall]


@dataclass(frozen=True)
class Witness:
    """Why a fact holds for a function.

    ``line`` is in the fact-holder's own file. ``via`` is the key of
    the callee the fact came from (``None`` for a direct seed, in which
    case ``desc`` names the terminal primitive, e.g. ``time.sleep``).
    """

    line: int
    desc: str
    via: str | None = None


class Linker:
    """Symbol table + call graph over a set of module summaries."""

    def __init__(self, summaries: list[ModuleSummary]) -> None:
        self.modules: dict[str, ModuleSummary] = {}
        self.funcs: dict[str, tuple[ModuleSummary, FunctionSummary]] = {}
        self.classes: dict[str, tuple[ModuleSummary, ClassInfo]] = {}
        for summary in summaries:
            if summary.parse_error is not None:
                continue
            self.modules[summary.module] = summary
            for fn in summary.functions:
                self.funcs[f"{summary.module}.{fn.name}"] = (summary, fn)
            for cls in summary.classes:
                self.classes[f"{summary.module}.{cls.name}"] = (summary, cls)
        self.nodes: dict[str, FunctionNode] = {}
        for key, (summary, fn) in self.funcs.items():
            self.nodes[key] = self._build_node(key, summary, fn)

    # -- symbol resolution -----------------------------------------------

    def resolve_dotted(self, dotted: str, _seen: set[str] | None = None) -> str | None:
        """Function key for a dotted path, or ``None`` if external.

        Follows re-exports (``from .engine import run_paths`` in an
        ``__init__``) and falls back to a base-class method walk for
        ``module.Class.method`` paths where the method is inherited.
        """
        seen = _seen if _seen is not None else set()
        if dotted in seen:
            return None
        seen.add(dotted)
        if dotted in self.funcs:
            return dotted
        parts = dotted.split(".")
        for i in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:i])
            module = self.modules.get(prefix)
            if module is None:
                continue
            rest = parts[i:]
            target = module.imports.get(rest[0])
            if target is not None:
                return self.resolve_dotted(".".join([target] + rest[1:]), seen)
            # inherited method: longest class prefix + method lookup
            for j in range(len(rest) - 1, 0, -1):
                cls_key = self.resolve_class(".".join([prefix] + rest[:j]))
                if cls_key is not None:
                    return self._resolve_method(cls_key, rest[j:])
            return None
        return None

    def resolve_class(self, dotted: str, _seen: set[str] | None = None) -> str | None:
        """Class key for a dotted path, following re-exports."""
        seen = _seen if _seen is not None else set()
        if dotted in seen:
            return None
        seen.add(dotted)
        if dotted in self.classes:
            return dotted
        parts = dotted.split(".")
        for i in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:i])
            module = self.modules.get(prefix)
            if module is None:
                continue
            target = module.imports.get(parts[i])
            if target is not None:
                return self.resolve_class(".".join([target] + parts[i + 1 :]), seen)
            return None
        return None

    def _iter_mro(self, cls_key: str) -> Iterator[tuple[str, ClassInfo]]:
        """Definition-order base walk (linearization fidelity is not
        needed for a may-analysis; first match wins)."""
        seen: set[str] = set()
        queue = [cls_key]
        while queue:
            key = queue.pop(0)
            if key in seen:
                continue
            seen.add(key)
            entry = self.classes.get(key)
            if entry is None:
                continue
            _, info = entry
            yield key, info
            for base in info.bases:
                base_key = self.resolve_class(base)
                if base_key is not None:
                    queue.append(base_key)

    def _attr_type(self, cls_key: str, attr: str) -> str | None:
        for _, info in self._iter_mro(cls_key):
            for name, type_ref in info.attr_types:
                if name == attr:
                    return type_ref
        return None

    def _resolve_method(self, cls_key: str, attr_path: list[str]) -> str | None:
        """Resolve ``instance.a.b.method()`` through attribute types."""
        for attr in attr_path[:-1]:
            type_ref = self._attr_type(cls_key, attr)
            if type_ref is None:
                return None
            next_key = self.resolve_class(type_ref)
            if next_key is None:
                return None
            cls_key = next_key
        method = attr_path[-1]
        for key, info in self._iter_mro(cls_key):
            if method in info.methods:
                return f"{key}.{method}"
        return None

    def resolve_ref(self, ref: str) -> tuple[str, str]:
        """Resolve a reference string -> ``(kind, payload)``.

        ``("internal", func_key)`` for project functions,
        ``("external", dotted)`` for names resolving outside the
        project, ``("unknown", ref)`` when resolution fails.
        """
        if ref.startswith("d:"):
            dotted = ref[2:]
            key = self.resolve_dotted(dotted)
            if key is not None:
                return ("internal", key)
            return ("external", dotted)
        if ref.startswith("m:"):
            _, cls, path = ref.split(":", 2)
            cls_key = self.resolve_class(cls)
            if cls_key is not None:
                key = self._resolve_method(cls_key, path.split("."))
                if key is not None:
                    return ("internal", key)
        return ("unknown", ref)

    def lock_class(self, lock_ref: str) -> str | None:
        """Dotted class of an ``async with`` context reference."""
        if lock_ref.startswith("i:"):
            return lock_ref[2:]
        if not lock_ref.startswith("m:"):
            return None
        _, cls, path = lock_ref.split(":", 2)
        current = cls
        for attr in path.split("."):
            cls_key = self.resolve_class(current)
            if cls_key is None:
                return None
            type_ref = self._attr_type(cls_key, attr)
            if type_ref is None:
                return None
            current = type_ref
        return current

    # -- call graph ------------------------------------------------------

    def _build_node(
        self, key: str, mod: ModuleSummary, fn: FunctionSummary
    ) -> FunctionNode:
        edges: list[Edge] = []
        externals: list[ExternalCall] = []
        for call in fn.calls:
            # Executor hand-offs sanitize: the callable runs in a
            # thread, so blocking (etc.) must not propagate through.
            callee_tail = call.callee.rpartition(".")[2]
            if callee_tail == "run_in_executor" or call.callee == "d:asyncio.to_thread":
                if call.awaited:
                    externals.append(
                        ExternalCall(
                            line=call.line,
                            dotted="asyncio.to_thread"
                            if call.callee == "d:asyncio.to_thread"
                            else "run_in_executor",
                            awaited=True,
                            lock=self.lock_class(call.lock_ref)
                            if call.lock_ref
                            else None,
                            rng_unseeded=False,
                            write_mode=False,
                        )
                    )
                continue
            kind, payload = self.resolve_ref(call.callee)
            lock = self.lock_class(call.lock_ref) if call.lock_ref else None
            if kind == "internal":
                _, target_fn = self.funcs[payload]
                edges.append(
                    Edge(
                        line=call.line,
                        target=payload,
                        display=target_fn.name,
                        awaited=call.awaited,
                        lock=lock,
                    )
                )
                for pos, arg_ref in call.func_args:
                    if pos >= len(target_fn.params):
                        continue
                    if target_fn.params[pos] not in target_fn.param_calls:
                        continue
                    arg_kind, arg_payload = self.resolve_ref(arg_ref)
                    if arg_kind == "internal":
                        _, arg_fn = self.funcs[arg_payload]
                        edges.append(
                            Edge(
                                line=call.line,
                                target=arg_payload,
                                display=f"{target_fn.name}({arg_fn.name})",
                                awaited=call.awaited,
                                lock=lock,
                                synthetic=True,
                            )
                        )
                    elif arg_kind == "external":
                        externals.append(
                            ExternalCall(
                                line=call.line,
                                dotted=arg_payload,
                                awaited=call.awaited,
                                lock=lock,
                                rng_unseeded=False,
                                write_mode=False,
                            )
                        )
            elif kind == "external":
                externals.append(
                    ExternalCall(
                        line=call.line,
                        dotted=payload,
                        awaited=call.awaited,
                        lock=lock,
                        rng_unseeded=call.rng_unseeded,
                        write_mode=call.write_mode,
                    )
                )
        return FunctionNode(key=key, mod=mod, fn=fn, edges=edges, externals=externals)

    # -- fixpoint --------------------------------------------------------

    def propagate(
        self,
        seeds: dict[str, Witness],
        edge_ok: Callable[[FunctionNode, Edge], bool],
    ) -> dict[str, Witness]:
        """Propagate ``seeds`` backwards along call edges to a fixpoint.

        A function acquires a fact when any admissible edge points at a
        function that has it; the witness records the first such edge.
        Plain iteration to a fixed point — the graph is small and
        cycles converge because facts only ever turn on.
        """
        facts = dict(seeds)
        changed = True
        while changed:
            changed = False
            for node in self.nodes.values():
                if node.key in facts:
                    continue
                for edge in node.edges:
                    if edge.target in facts and edge_ok(node, edge):
                        facts[node.key] = Witness(
                            line=edge.line, desc=edge.display, via=edge.target
                        )
                        changed = True
                        break
        return facts

    def witness_chain(
        self, facts: dict[str, Witness], key: str
    ) -> tuple[list[str], Witness, str]:
        """Follow witness links from ``key`` to the terminal seed.

        Returns ``(via_names, terminal_witness, terminal_path)`` where
        ``via_names`` are the intermediate function names (not
        including ``key`` itself) and ``terminal_path`` is the file of
        the function holding the terminal witness.
        """
        via: list[str] = []
        current = key
        witness = facts[current]
        guard: set[str] = {current}
        while witness.via is not None and witness.via not in guard:
            current = witness.via
            guard.add(current)
            via.append(self.funcs[current][1].name)
            witness = facts[current]
        return via, witness, self.funcs[current][0].path

    # -- facts -----------------------------------------------------------

    def blocking_facts(self) -> dict[str, Witness]:
        """may-block: a blocking primitive is reachable through sync
        calls. Async callees keep their own facts (they report their
        own REP101 findings), so propagation stops at async frames."""
        seeds: dict[str, Witness] = {}
        for node in self.nodes.values():
            for ext in node.externals:
                if ext.dotted in _BLOCKING and not self._suppressed(
                    node, ext.line, ("REP101", "REP005")
                ):
                    seeds.setdefault(node.key, Witness(ext.line, ext.dotted))
        return self.propagate(
            seeds,
            lambda node, edge: not self.funcs[edge.target][1].is_async,
        )

    def unseeded_facts(self) -> dict[str, Witness]:
        """may-sample-unseeded: hidden-global or fresh-entropy RNG use."""
        seeds: dict[str, Witness] = {}
        for node in self.nodes.values():
            for ext in node.externals:
                if ext.rng_unseeded and not self._suppressed(
                    node, ext.line, ("REP102", "REP001")
                ):
                    seeds.setdefault(node.key, Witness(ext.line, ext.dotted))
        return self.propagate(seeds, lambda node, edge: True)

    def raw_mutation_facts(self) -> dict[str, Witness]:
        """may-mutate-raw: write-mode ``open`` or a raw rename, outside
        ``repro.runtime.atomic`` (which is the sanctioned implementation
        of those primitives)."""
        seeds: dict[str, Witness] = {}
        for node in self.nodes.values():
            if node.mod.module == "repro.runtime.atomic":
                continue
            for ext in node.externals:
                raw = ext.dotted in RAW_RENAMES or (
                    ext.write_mode and ext.dotted in ("open", "io.open")
                )
                if raw and not self._suppressed(node, ext.line, ("REP104",)):
                    seeds.setdefault(node.key, Witness(ext.line, ext.dotted))
        return self.propagate(
            seeds,
            lambda node, edge: self.funcs[edge.target][0].module
            != "repro.runtime.atomic",
        )

    def nonfinite_facts(self) -> dict[str, Witness]:
        """may-return-non-finite: a non-finite constant flows into a
        ``return``, directly or through internal call results."""
        facts: dict[str, Witness] = {}
        for node in self.nodes.values():
            for const in node.fn.ret_consts:
                if not self._suppressed(node, const.line, ("REP103",)):
                    facts.setdefault(node.key, Witness(const.line, const.desc))
                    break
        changed = True
        while changed:
            changed = False
            for node in self.nodes.values():
                if node.key in facts:
                    continue
                for ret_call in node.fn.ret_calls:
                    kind, payload = self.resolve_ref(ret_call.desc)
                    if kind == "internal" and payload in facts:
                        facts[node.key] = Witness(
                            line=ret_call.line,
                            desc=self.funcs[payload][1].name,
                            via=payload,
                        )
                        changed = True
                        break
        return facts

    def slow_facts(self) -> dict[str, Witness]:
        """awaits-slow-op: the function awaits a timer/network/executor
        primitive, directly or through an awaited async callee."""
        seeds: dict[str, Witness] = {}
        for node in self.nodes.values():
            for ext in node.externals:
                if ext.awaited and ext.dotted in SLOW_EXTERNAL | {"run_in_executor"}:
                    seeds.setdefault(node.key, Witness(ext.line, ext.dotted))
        return self.propagate(
            seeds,
            lambda node, edge: edge.awaited and self.funcs[edge.target][1].is_async,
        )

    def _suppressed(
        self, node: FunctionNode, line: int, rules: tuple[str, ...]
    ) -> bool:
        return any(node.mod.pragmas.suppresses(rule, line) for rule in rules)
