"""REP101–REP105: diagnostics derived from linked fixpoint facts.

Each flow rule reports at the *nearest responsible frame*: REP101 in
the async function whose call starts the blocking chain, REP102 in the
sampling entry point, REP104 in the ``repro.runtime`` store path,
REP103 at the JSON sink, REP105 at the awaited call under the lock.
The chain to the terminal primitive is spelled out in the message so a
cross-file finding is actionable without re-running the analysis.

Suppression works at both ends: a ``# lint: allow[...]`` at the report
site hides the finding, and one at the *source* (the blocking call,
the RNG draw, the raw rename, the non-finite constant) kills the fact
before it propagates — the right tool when a primitive is legitimate
by construction rather than per-caller.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..diagnostics import Diagnostic
from ..rules.rep005_async_blocking import _BLOCKING
from .linker import ASYNC_LOCK_CLASSES, FunctionNode, Linker, Witness
from .model import ModuleSummary

__all__ = ["FLOW_RULES", "FlowRuleInfo", "analyze"]

#: Function names that constitute sampling/simulation entry points for
#: REP102 (the public surface whose reproducibility the paper's
#: Monte-Carlo validation rests on).
_SAMPLE_ENTRYPOINTS = frozenset({"_sample", "sample"})
_SAMPLE_PREFIXES = ("simulate", "run_replication")

#: Modules whose functions are checkpoint/store write paths (REP104).
_STORE_PREFIX = "repro.runtime"
_ATOMIC_MODULE = "repro.runtime.atomic"

#: Awaitables slow enough to matter under a lock (REP105): the
#: SLOW_EXTERNAL primitives plus the executor hop marker.
_SLOW_DIRECT = frozenset(
    {
        "asyncio.sleep",
        "asyncio.wait_for",
        "asyncio.wait",
        "asyncio.gather",
        "asyncio.open_connection",
        "asyncio.to_thread",
        "run_in_executor",
    }
)


@dataclass(frozen=True)
class FlowRuleInfo:
    """Catalog entry for one flow rule (mirrors :class:`rules.base.Rule`
    metadata so ``--list-rules`` and select/ignore validation cover
    flow rules uniformly)."""

    id: str
    title: str
    rationale: str


FLOW_RULES: tuple[FlowRuleInfo, ...] = (
    FlowRuleInfo(
        id="REP101",
        title="no blocking call transitively reachable from async def",
        rationale=(
            "REP005 only sees the immediately enclosing function; a sync "
            "helper that sleeps or does file I/O stalls the event loop just "
            "as surely when called two files away from the async frame."
        ),
    ),
    FlowRuleInfo(
        id="REP102",
        title="no unseeded RNG transitively reaching a sampling entry point",
        rationale=(
            "Monte-Carlo validation is only evidence when every draw on the "
            "path from sample()/simulate_*() is seeded; an unseeded helper "
            "two calls deep silently unseeds the whole experiment."
        ),
    ),
    FlowRuleInfo(
        id="REP103",
        title="no possibly-non-finite float reaching a strict-JSON sink",
        rationale=(
            "Checkpoint envelopes and service responses are strict JSON "
            "(allow_nan=False); a NaN/Infinity reaching json.dumps raises at "
            "the worst possible moment — mid-checkpoint or mid-response."
        ),
    ),
    FlowRuleInfo(
        id="REP104",
        title="no raw file mutation reachable from repro.runtime store paths",
        rationale=(
            "Crash-consistency of checkpoints depends on every store write "
            "going through repro.runtime.atomic (tmp + fsync + rename); a raw "
            "open('w') or os.replace on the store path can tear on SIGKILL."
        ),
    ),
    FlowRuleInfo(
        id="REP105",
        title="no await of a slow operation while holding an asyncio lock",
        rationale=(
            "Awaiting a timer, network call, or executor hop inside `async "
            "with lock:` serializes every other task on that lock for the "
            "full duration — an invisible global stall under load."
        ),
    ),
)


class _FlowReporter:
    def __init__(self, linker: Linker) -> None:
        self.linker = linker
        self.diagnostics: list[Diagnostic] = []

    def report(
        self, node: FunctionNode, line: int, rule: str, message: str
    ) -> None:
        extra: tuple[str, ...] = ("REP005",) if rule == "REP101" else ()
        for candidate in (rule, *extra):
            if node.mod.pragmas.suppresses(candidate, line):
                return
        self.diagnostics.append(
            Diagnostic(path=node.mod.path, line=line, col=1, rule=rule, message=message)
        )

    def _chain_text(self, facts: dict[str, Witness], target: str) -> tuple[str, str]:
        """(`via` fragment, terminal site) for a witness chain."""
        via, terminal, term_path = self.linker.witness_chain(facts, target)
        names = [self.linker.funcs[target][1].name, *via]
        fragment = " -> ".join(f"`{name}`" for name in names)
        return fragment, f"{term_path}:{terminal.line}"

    # -- REP101 ----------------------------------------------------------

    def rep101(self, blocks: dict[str, Witness]) -> None:
        for node in self.linker.nodes.values():
            if not node.fn.is_async:
                continue
            for ext in node.externals:
                if ext.dotted in _BLOCKING:
                    self.report(
                        node,
                        ext.line,
                        "REP101",
                        f"blocking `{ext.dotted}` inside `async def "
                        f"{node.fn.name}` stalls the event loop; use "
                        f"{_BLOCKING[ext.dotted]}",
                    )
            for edge in node.edges:
                target_fn = self.linker.funcs[edge.target][1]
                if target_fn.is_async or edge.target not in blocks:
                    continue
                via, terminal, term_path = self.linker.witness_chain(
                    blocks, edge.target
                )
                fragment = " -> ".join(
                    f"`{name}`" for name in [target_fn.name, *via]
                )
                self.report(
                    node,
                    edge.line,
                    "REP101",
                    f"blocking `{terminal.desc}` ({term_path}:{terminal.line}) "
                    f"reached from `async def {node.fn.name}` via {fragment}; "
                    f"use {_BLOCKING.get(terminal.desc, 'loop.run_in_executor')}",
                )

    # -- REP102 ----------------------------------------------------------

    @staticmethod
    def _is_entrypoint(name: str) -> bool:
        tail = name.rpartition(".")[2]
        return tail in _SAMPLE_ENTRYPOINTS or tail.startswith(_SAMPLE_PREFIXES)

    def rep102(self, unseeded: dict[str, Witness]) -> None:
        for node in self.linker.nodes.values():
            if not self._is_entrypoint(node.fn.name):
                continue
            for edge in node.edges:
                if edge.target not in unseeded:
                    continue
                fragment, site = self._chain_text(unseeded, edge.target)
                terminal = self.linker.witness_chain(unseeded, edge.target)[1]
                self.report(
                    node,
                    edge.line,
                    "REP102",
                    f"unseeded RNG `{terminal.desc}` ({site}) reaches sampling "
                    f"entry point `{node.fn.name}` via {fragment}; thread a "
                    "seeded Generator parameter through this call path",
                )

    # -- REP103 ----------------------------------------------------------

    def rep103(self, nonfinite: dict[str, Witness]) -> None:
        for node in self.linker.nodes.values():
            for sink in node.fn.sinks:
                if node.mod.pragmas.suppresses("REP103", sink.line):
                    continue
                for const in sink.consts:
                    if node.mod.pragmas.suppresses("REP103", const.line):
                        continue
                    self.report(
                        node,
                        sink.line,
                        "REP103",
                        f"possibly non-finite `{const.desc}` (line {const.line}) "
                        f"reaches strict-JSON sink `{sink.sink}`; guard with "
                        "math.isfinite(...) or map to None before serializing",
                    )
                for call in sink.calls:
                    kind, payload = self.linker.resolve_ref(call.desc)
                    if kind != "internal" or payload not in nonfinite:
                        continue
                    fragment, site = self._chain_text(nonfinite, payload)
                    terminal = self.linker.witness_chain(nonfinite, payload)[1]
                    self.report(
                        node,
                        sink.line,
                        "REP103",
                        f"possibly non-finite `{terminal.desc}` ({site}) returned "
                        f"via {fragment} reaches strict-JSON sink `{sink.sink}`; "
                        "guard with math.isfinite(...) or map to None before "
                        "serializing",
                    )

    # -- REP104 ----------------------------------------------------------

    def rep104(self, raw_mut: dict[str, Witness]) -> None:
        for node in self.linker.nodes.values():
            if not node.mod.module.startswith(_STORE_PREFIX):
                continue
            if node.mod.module == _ATOMIC_MODULE:
                continue
            for ext in node.externals:
                raw = ext.dotted in ("os.rename", "os.replace", "os.renames") or (
                    ext.write_mode and ext.dotted in ("open", "io.open")
                )
                if raw:
                    self.report(
                        node,
                        ext.line,
                        "REP104",
                        f"raw `{ext.dotted}` in store path `{node.fn.name}` "
                        "mutates files directly; route the write through "
                        "repro.runtime.atomic",
                    )
            for edge in node.edges:
                if edge.target not in raw_mut:
                    continue
                if self.linker.funcs[edge.target][0].module == _ATOMIC_MODULE:
                    continue
                fragment, site = self._chain_text(raw_mut, edge.target)
                terminal = self.linker.witness_chain(raw_mut, edge.target)[1]
                self.report(
                    node,
                    edge.line,
                    "REP104",
                    f"raw `{terminal.desc}` ({site}) reachable from store path "
                    f"`{node.fn.name}` via {fragment} bypasses "
                    "repro.runtime.atomic",
                )

    # -- REP105 ----------------------------------------------------------

    def rep105(self, slow: dict[str, Witness]) -> None:
        for node in self.linker.nodes.values():
            if not node.fn.is_async:
                continue
            for ext in node.externals:
                if (
                    ext.awaited
                    and ext.lock in ASYNC_LOCK_CLASSES
                    and ext.dotted in _SLOW_DIRECT
                ):
                    self.report(
                        node,
                        ext.line,
                        "REP105",
                        f"`async def {node.fn.name}` awaits slow `{ext.dotted}` "
                        f"while holding `{ext.lock}`; release the lock before "
                        "awaiting or narrow the critical section",
                    )
            for edge in node.edges:
                if not edge.awaited or edge.lock not in ASYNC_LOCK_CLASSES:
                    continue
                if edge.target not in slow:
                    continue
                fragment, site = self._chain_text(slow, edge.target)
                terminal = self.linker.witness_chain(slow, edge.target)[1]
                self.report(
                    node,
                    edge.line,
                    "REP105",
                    f"`async def {node.fn.name}` awaits `{fragment}` which "
                    f"reaches slow `{terminal.desc}` ({site}) while holding "
                    f"`{edge.lock}`; release the lock before awaiting or "
                    "narrow the critical section",
                )


def analyze(summaries: list[ModuleSummary]) -> list[Diagnostic]:
    """Link ``summaries`` and produce all REP101–REP105 diagnostics."""
    linker = Linker(summaries)
    reporter = _FlowReporter(linker)
    reporter.rep101(linker.blocking_facts())
    reporter.rep102(linker.unseeded_facts())
    reporter.rep103(linker.nonfinite_facts())
    reporter.rep104(linker.raw_mutation_facts())
    reporter.rep105(linker.slow_facts())
    return sorted(set(reporter.diagnostics))
