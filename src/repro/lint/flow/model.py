"""Serializable per-file summaries for the interprocedural flow pass.

The flow analysis is split into two phases so that per-file work can be
cached on disk (:mod:`repro.lint.flow.cache`):

* **Extraction** (:mod:`repro.lint.flow.project`) parses one file and
  reduces it to a :class:`ModuleSummary` — functions with their call
  sites, taint facts and pragma index, classes with their bases and
  attribute types, and the module's import map. A summary is plain
  data: JSON-serializable, independent of every other file, and a pure
  function of the file's bytes (which is what makes content-hash
  caching sound).
* **Linking** (:mod:`repro.lint.flow.linker`) stitches all summaries
  into a project-wide symbol table and call graph and runs the fixpoint
  propagation. Linking is cheap (no parsing) and always runs over the
  full summary set, so editing one file re-extracts only that file yet
  still updates findings in every caller.

Symbolic references
-------------------
Cross-file names are carried as *reference strings* resolved at link
time:

``d:<dotted.path>``
    A name/attribute chain rooted in an import (or a builtin), already
    canonicalized through the module's import map — e.g.
    ``d:time.sleep``, ``d:repro.runtime.atomic.atomic_write_json``.
``m:<class-dref>:<attr.path>``
    A method/attribute chain rooted in an *instance* of a known class —
    e.g. ``m:repro.service.server.AdvisorServer:advisor.policy`` for
    ``self.advisor.policy`` inside ``AdvisorServer``. The linker walks
    the attribute types of each class along the chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..pragmas import PragmaIndex

__all__ = [
    "SUMMARY_SCHEMA",
    "CallFact",
    "ClassInfo",
    "FunctionSummary",
    "ModuleSummary",
    "SinkFact",
    "SourceFact",
]

#: Bumped whenever the summary layout or extraction semantics change;
#: cached summaries from other schemas are discarded wholesale.
SUMMARY_SCHEMA = 1


def _as_int(value: object) -> int:
    """Narrow a JSON-decoded value to int (bool is not acceptable)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"expected int, got {value!r}")
    return value


def _as_list(value: object) -> list[object]:
    if not isinstance(value, list):
        raise ValueError(f"expected list, got {value!r}")
    return value


def _as_dict(value: object) -> dict[str, object]:
    if not isinstance(value, dict):
        raise ValueError(f"expected dict, got {value!r}")
    return {str(key): item for key, item in value.items()}


def _as_pair(value: object) -> tuple[object, object]:
    items = _as_list(value)
    if len(items) != 2:
        raise ValueError(f"expected a pair, got {value!r}")
    return items[0], items[1]


@dataclass(frozen=True)
class SourceFact:
    """A line-anchored fact description (e.g. a non-finite constant)."""

    desc: str
    line: int

    def to_obj(self) -> list[object]:
        return [self.desc, self.line]

    @staticmethod
    def from_obj(obj: object) -> "SourceFact":
        desc, line = _as_pair(obj)
        return SourceFact(desc=str(desc), line=_as_int(line))


@dataclass(frozen=True)
class CallFact:
    """One call site inside a function body.

    ``func_args`` maps positional argument index -> reference string for
    arguments that resolve to functions (first-order callables); all
    other arguments are omitted. ``lock_ref`` is the reference of the
    innermost ``async with`` context expression enclosing the call, for
    REP105's lock detection (``None`` outside any ``async with``).
    """

    line: int
    callee: str
    awaited: bool = False
    rng_unseeded: bool = False
    write_mode: bool = False
    lock_ref: str | None = None
    func_args: tuple[tuple[int, str], ...] = ()

    def to_obj(self) -> dict[str, object]:
        out: dict[str, object] = {"l": self.line, "c": self.callee}
        if self.awaited:
            out["a"] = True
        if self.rng_unseeded:
            out["r"] = True
        if self.write_mode:
            out["w"] = True
        if self.lock_ref is not None:
            out["k"] = self.lock_ref
        if self.func_args:
            out["f"] = [[pos, ref] for pos, ref in self.func_args]
        return out

    @staticmethod
    def from_obj(obj: object) -> "CallFact":
        data = _as_dict(obj)
        func_args: list[tuple[int, str]] = []
        for item in _as_list(data.get("f", [])):
            pos, ref = _as_pair(item)
            func_args.append((_as_int(pos), str(ref)))
        lock = data.get("k")
        return CallFact(
            line=_as_int(data["l"]),
            callee=str(data["c"]),
            awaited=bool(data.get("a", False)),
            rng_unseeded=bool(data.get("r", False)),
            write_mode=bool(data.get("w", False)),
            lock_ref=str(lock) if lock is not None else None,
            func_args=tuple(func_args),
        )


@dataclass(frozen=True)
class SinkFact:
    """A strict-JSON sink call and the taint sources reaching its args.

    ``consts`` are non-finite constants that flow (possibly through
    locals) into an argument; ``calls`` are call results that flow in,
    to be checked against the callee's ``may_return_nonfinite`` fact at
    link time. isfinite-guarded names are dropped during extraction.
    """

    line: int
    sink: str
    consts: tuple[SourceFact, ...] = ()
    calls: tuple[SourceFact, ...] = ()  # desc = callee reference string

    def to_obj(self) -> dict[str, object]:
        return {
            "l": self.line,
            "s": self.sink,
            "n": [c.to_obj() for c in self.consts],
            "c": [c.to_obj() for c in self.calls],
        }

    @staticmethod
    def from_obj(obj: object) -> "SinkFact":
        data = _as_dict(obj)
        return SinkFact(
            line=_as_int(data["l"]),
            sink=str(data["s"]),
            consts=tuple(SourceFact.from_obj(c) for c in _as_list(data.get("n", []))),
            calls=tuple(SourceFact.from_obj(c) for c in _as_list(data.get("c", []))),
        )


@dataclass(frozen=True)
class FunctionSummary:
    """Everything the linker needs to know about one function."""

    #: Scope path inside the module, e.g. ``"AdvisorServer._dispatch"``.
    name: str
    line: int
    is_async: bool
    #: Positional parameter names, in order (for first-order linking).
    params: tuple[str, ...] = ()
    #: Names of own parameters the body calls (``f(g)`` linking).
    param_calls: tuple[str, ...] = ()
    calls: tuple[CallFact, ...] = ()
    #: Non-finite constants flowing into a ``return`` expression.
    ret_consts: tuple[SourceFact, ...] = ()
    #: Call results flowing into a ``return`` (desc = reference string).
    ret_calls: tuple[SourceFact, ...] = ()
    sinks: tuple[SinkFact, ...] = ()

    def to_obj(self) -> dict[str, object]:
        return {
            "name": self.name,
            "line": self.line,
            "async": self.is_async,
            "params": list(self.params),
            "param_calls": list(self.param_calls),
            "calls": [c.to_obj() for c in self.calls],
            "ret_consts": [c.to_obj() for c in self.ret_consts],
            "ret_calls": [c.to_obj() for c in self.ret_calls],
            "sinks": [s.to_obj() for s in self.sinks],
        }

    @staticmethod
    def from_obj(obj: object) -> "FunctionSummary":
        data = _as_dict(obj)
        return FunctionSummary(
            name=str(data["name"]),
            line=_as_int(data["line"]),
            is_async=bool(data["async"]),
            params=tuple(str(p) for p in _as_list(data.get("params", []))),
            param_calls=tuple(str(p) for p in _as_list(data.get("param_calls", []))),
            calls=tuple(CallFact.from_obj(c) for c in _as_list(data.get("calls", []))),
            ret_consts=tuple(
                SourceFact.from_obj(c) for c in _as_list(data.get("ret_consts", []))
            ),
            ret_calls=tuple(
                SourceFact.from_obj(c) for c in _as_list(data.get("ret_calls", []))
            ),
            sinks=tuple(SinkFact.from_obj(s) for s in _as_list(data.get("sinks", []))),
        )


@dataclass(frozen=True)
class ClassInfo:
    """One class definition: bases, methods, inferred attribute types."""

    #: Scope path inside the module, e.g. ``"AdvisorServer"``.
    name: str
    line: int
    #: Base-class reference strings, in definition order.
    bases: tuple[str, ...] = ()
    #: Method names defined directly on this class.
    methods: tuple[str, ...] = ()
    #: Attribute name -> class reference (``self.x = Cls(...)`` or an
    #: annotated constructor parameter assigned to ``self.x``).
    attr_types: tuple[tuple[str, str], ...] = ()

    def to_obj(self) -> dict[str, object]:
        return {
            "name": self.name,
            "line": self.line,
            "bases": list(self.bases),
            "methods": list(self.methods),
            "attrs": [[k, v] for k, v in self.attr_types],
        }

    @staticmethod
    def from_obj(obj: object) -> "ClassInfo":
        data = _as_dict(obj)
        attr_types: list[tuple[str, str]] = []
        for item in _as_list(data.get("attrs", [])):
            key, value = _as_pair(item)
            attr_types.append((str(key), str(value)))
        return ClassInfo(
            name=str(data["name"]),
            line=_as_int(data["line"]),
            bases=tuple(str(b) for b in _as_list(data.get("bases", []))),
            methods=tuple(str(m) for m in _as_list(data.get("methods", []))),
            attr_types=tuple(attr_types),
        )


@dataclass
class ModuleSummary:
    """The complete extraction result for one file."""

    path: str
    module: str
    functions: tuple[FunctionSummary, ...] = ()
    classes: tuple[ClassInfo, ...] = ()
    #: local alias -> canonical dotted path (relative imports resolved).
    imports: dict[str, str] = field(default_factory=dict)
    pragmas: PragmaIndex = field(default_factory=PragmaIndex)
    #: ``(line, col, message)`` when the file does not parse; the flow
    #: pass skips such files (the per-file REP000 diagnostic already
    #: fails the run loudly).
    parse_error: tuple[int, int, str] | None = None

    def to_obj(self) -> dict[str, object]:
        return {
            "path": self.path,
            "module": self.module,
            "functions": [f.to_obj() for f in self.functions],
            "classes": [c.to_obj() for c in self.classes],
            "imports": dict(self.imports),
            "pragma_file": sorted(self.pragmas.file_rules),
            "pragma_lines": {
                str(line): sorted(rules)
                for line, rules in sorted(self.pragmas.line_rules.items())
            },
            "parse_error": list(self.parse_error) if self.parse_error else None,
        }

    @staticmethod
    def from_obj(obj: object) -> "ModuleSummary":
        data = _as_dict(obj)
        err = data.get("parse_error")
        parse_error: tuple[int, int, str] | None = None
        if err is not None:
            items = _as_list(err)
            if len(items) != 3:
                raise ValueError(f"malformed parse_error {err!r}")
            parse_error = (_as_int(items[0]), _as_int(items[1]), str(items[2]))
        return ModuleSummary(
            path=str(data["path"]),
            module=str(data["module"]),
            functions=tuple(
                FunctionSummary.from_obj(f) for f in _as_list(data.get("functions", []))
            ),
            classes=tuple(
                ClassInfo.from_obj(c) for c in _as_list(data.get("classes", []))
            ),
            imports={
                key: str(value)
                for key, value in _as_dict(data.get("imports", {})).items()
            },
            pragmas=PragmaIndex(
                file_rules=frozenset(
                    str(r) for r in _as_list(data.get("pragma_file", []))
                ),
                line_rules={
                    _as_int(int(line)): frozenset(str(r) for r in _as_list(rules))
                    for line, rules in _as_dict(data.get("pragma_lines", {})).items()
                },
            ),
            parse_error=parse_error,
        )
