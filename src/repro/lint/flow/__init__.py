"""Interprocedural flow analysis for the invariant linter.

``repro lint --flow`` runs this package on top of the per-file rules:
every file is reduced to a cacheable :class:`ModuleSummary`
(:mod:`.project`), the summaries are linked into a project-wide call
graph with fixpoint facts (:mod:`.linker`), and the REP101–REP105 flow
rules (:mod:`.rules`) turn those facts into diagnostics that cross
function and file boundaries. :mod:`.cache` keys summaries by content
hash so warm runs re-extract only edited files.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence

from ..diagnostics import Diagnostic
from ..engine import iter_python_files
from .cache import DEFAULT_CACHE_DIR, SummaryCache, file_digest
from .model import ModuleSummary
from .project import extract_module
from .rules import FLOW_RULES, FlowRuleInfo, analyze

__all__ = [
    "DEFAULT_CACHE_DIR",
    "FLOW_RULES",
    "FlowResult",
    "FlowRuleInfo",
    "run_flow_paths",
]


@dataclass(frozen=True)
class FlowResult:
    diagnostics: list[Diagnostic]
    files_checked: int
    #: files extracted this run (cache misses); 0 on a warm run over an
    #: unchanged tree.
    files_reanalyzed: int


def run_flow_paths(
    paths: Sequence[str],
    *,
    cache_dir: str | None = None,
    use_cache: bool = True,
) -> FlowResult:
    """Run the full flow analysis over every python file in ``paths``."""
    for path in paths:
        if not os.path.exists(path):
            raise FileNotFoundError(f"lint path does not exist: {path}")
    cache: SummaryCache | None = None
    if use_cache:
        cache = SummaryCache(cache_dir if cache_dir is not None else DEFAULT_CACHE_DIR)
        cache.load()
    summaries: list[ModuleSummary] = []
    seen: set[str] = set()
    reanalyzed = 0
    for file_path in iter_python_files(paths):
        norm_path = file_path.replace("\\", "/")
        with open(file_path, "rb") as fh:
            data = fh.read()
        digest = file_digest(data)
        summary = cache.get(norm_path, digest) if cache is not None else None
        if summary is None:
            source = data.decode("utf-8", errors="replace")
            summary = extract_module(file_path, source)
            reanalyzed += 1
        if cache is not None:
            cache.put(norm_path, digest, summary)
        summaries.append(summary)
        seen.add(norm_path)
    if cache is not None:
        cache.save(seen)
    return FlowResult(
        diagnostics=analyze(summaries),
        files_checked=len(summaries),
        files_reanalyzed=reanalyzed,
    )
