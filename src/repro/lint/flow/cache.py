"""Content-hash-keyed on-disk cache of per-file module summaries.

Extraction (parse + summarize) dominates flow-analysis time; linking
is cheap. Since a :class:`ModuleSummary` is a pure function of the
file's bytes, caching it under the file's SHA-256 digest is sound by
construction: any edit changes the digest and forces re-extraction of
exactly that file, while the link phase always re-runs over the full
summary set — so editing one file still updates findings in every
caller.

The cache is one JSON envelope written through
:func:`repro.runtime.atomic.atomic_write_json` — the same atomic
tmp + fsync + rename discipline the linter enforces on the rest of the
tree (REP104 applies to this module like any other). A missing,
corrupt, torn, or schema-mismatched cache file degrades to a cold run,
never to an error.
"""

from __future__ import annotations

import hashlib
import os

from ...runtime.atomic import (
    EnvelopeCorruptionError,
    EnvelopeFormatError,
    atomic_write_json,
    read_json_envelope,
)
from .model import SUMMARY_SCHEMA, ModuleSummary, _as_dict

__all__ = ["CACHE_BASENAME", "DEFAULT_CACHE_DIR", "SummaryCache", "file_digest"]

CACHE_BASENAME = "flow-summaries.json"

#: Relative to the invocation CWD, like pytest's/.mypy_cache's default.
DEFAULT_CACHE_DIR = ".repro-lint-cache"


def file_digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class SummaryCache:
    """Digest-keyed summaries for one project tree."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.path = os.path.join(directory, CACHE_BASENAME)
        #: normalized file path -> (sha256 hex digest, summary)
        self._entries: dict[str, tuple[str, ModuleSummary]] = {}
        self._dirty = False

    def load(self) -> None:
        """Read the cache file; any defect degrades to an empty cache."""
        self._entries = {}
        try:
            payload = read_json_envelope(
                self.path, fmt=SUMMARY_SCHEMA, payload_key="summaries"
            )
            for path, entry_obj in _as_dict(payload.get("files", {})).items():
                entry = _as_dict(entry_obj)
                summary = ModuleSummary.from_obj(entry["summary"])
                self._entries[path] = (str(entry["sha256"]), summary)
        except (
            OSError,
            EnvelopeFormatError,
            EnvelopeCorruptionError,
            ValueError,
            KeyError,
            TypeError,
        ):
            self._entries = {}

    def get(self, path: str, digest: str) -> ModuleSummary | None:
        entry = self._entries.get(path)
        if entry is not None and entry[0] == digest:
            return entry[1]
        return None

    def put(self, path: str, digest: str, summary: ModuleSummary) -> None:
        previous = self._entries.get(path)
        if previous is None or previous[0] != digest:
            self._dirty = True
        self._entries[path] = (digest, summary)

    def save(self, keep_paths: set[str]) -> None:
        """Persist entries for ``keep_paths`` (dropping files that left
        the lint scope, so the cache cannot grow without bound)."""
        if not self._dirty and set(self._entries) <= keep_paths:
            return
        files: dict[str, object] = {
            path: {"sha256": digest, "summary": summary.to_obj()}
            for path, (digest, summary) in sorted(self._entries.items())
            if path in keep_paths
        }
        os.makedirs(self.directory, exist_ok=True)
        atomic_write_json(
            self.path,
            {"files": files},
            fmt=SUMMARY_SCHEMA,
            payload_key="summaries",
        )
        self._dirty = False
