"""Dependency-free ASCII line charts.

Matplotlib is unavailable in the offline reproduction environment, so
the figures of the paper are rendered as terminal charts: each series
gets a distinct glyph, the canvas is a fixed-size character grid, and
markers can flag notable abscissae (e.g. ``X_opt``). The *numbers* that
matter are always printed alongside by the benches; these charts are
for eyeballing curve shapes (the paper's "both cases" panels).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .._validation import check_integer
from ..analysis.series import Series

__all__ = ["render_chart"]

#: Glyph cycle for successive series.
_GLYPHS = "*o+x#@%&"


def _format_tick(v: float) -> str:
    if v == 0.0:
        return "0"
    if abs(v) >= 1000 or abs(v) < 0.01:
        return f"{v:.2e}"
    return f"{v:.3g}"


def render_chart(
    series_list: Sequence[Series],
    *,
    width: int = 72,
    height: int = 20,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    markers: dict[str, float] | None = None,
) -> str:
    """Render one or more series on a shared-axis character canvas.

    Parameters
    ----------
    series_list:
        Series to overlay (glyphs assigned in order).
    width, height:
        Canvas size in characters (plot area, excluding axes).
    title, xlabel, ylabel:
        Labels; ``ylabel`` is printed above the axis.
    markers:
        ``{label: x}`` vertical markers (rendered as ``|`` columns with
        a legend entry), e.g. ``{"X_opt": 5.5}``.

    Returns
    -------
    str
        The chart, ready to ``print``.
    """
    if not series_list:
        raise ValueError("need at least one series")
    width = check_integer(width, "width", minimum=16)
    height = check_integer(height, "height", minimum=4)

    x_min = min(float(s.x.min()) for s in series_list)
    x_max = max(float(s.x.max()) for s in series_list)
    y_min = min(float(s.y.min()) for s in series_list)
    y_max = max(float(s.y.max()) for s in series_list)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0
    # A little vertical headroom so maxima don't clip the frame.
    pad = 0.05 * (y_max - y_min)
    y_min -= pad
    y_max += pad

    grid = [[" "] * width for _ in range(height)]

    def col(x: float) -> int:
        return min(width - 1, max(0, int(round((x - x_min) / (x_max - x_min) * (width - 1)))))

    def row(y: float) -> int:
        frac = (y - y_min) / (y_max - y_min)
        return min(height - 1, max(0, int(round((1.0 - frac) * (height - 1)))))

    if markers:
        for x in markers.values():
            if x_min <= x <= x_max:
                c = col(x)
                for r in range(height):
                    grid[r][c] = "|"

    for idx, s in enumerate(series_list):
        glyph = _GLYPHS[idx % len(_GLYPHS)]
        # Densify so the polyline has no gaps at this resolution.
        xs = np.linspace(x_min, x_max, width * 4)
        inside = (xs >= s.x.min()) & (xs <= s.x.max())
        ys = np.interp(xs[inside], s.x, s.y)
        for x, y in zip(xs[inside], ys):
            if math.isfinite(y):
                grid[row(float(y))][col(float(x))] = glyph

    lines: list[str] = []
    if title:
        lines.append(title.center(width + 10))
    if ylabel:
        lines.append(ylabel)
    y_top = _format_tick(y_max)
    y_bot = _format_tick(y_min)
    label_w = max(len(y_top), len(y_bot))
    for r, grid_row in enumerate(grid):
        if r == 0:
            lbl = y_top.rjust(label_w)
        elif r == height - 1:
            lbl = y_bot.rjust(label_w)
        else:
            lbl = " " * label_w
        lines.append(f"{lbl} |{''.join(grid_row)}")
    lines.append(" " * label_w + " +" + "-" * width)
    x_lo = _format_tick(x_min)
    x_hi = _format_tick(x_max)
    gap = width - len(x_lo) - len(x_hi)
    lines.append(" " * (label_w + 2) + x_lo + " " * max(gap, 1) + x_hi)
    if xlabel:
        lines.append(xlabel.center(width + label_w + 2))
    legend = [
        f"{_GLYPHS[i % len(_GLYPHS)]} {s.label}" for i, s in enumerate(series_list)
    ]
    if markers:
        legend.extend(f"| {name} = {x:.4g}" for name, x in markers.items())
    lines.append("  ".join(legend))
    return "\n".join(lines)
