"""Terminal-friendly rendering and CSV export of figure data."""

from .ascii import render_chart
from .csvout import read_series_csv, write_series_csv

__all__ = ["render_chart", "write_series_csv", "read_series_csv"]
