"""CSV export of data series.

Benches write the exact numbers behind every regenerated figure to
``results/*.csv`` so they can be re-plotted with any external tool
(matplotlib, gnuplot, a spreadsheet) without re-running the sweep.
"""

from __future__ import annotations

import csv
import os
from typing import Sequence

import numpy as np

from ..analysis.series import Series

__all__ = ["write_series_csv", "read_series_csv"]


def write_series_csv(path: str, series_list: Sequence[Series], *, x_name: str = "x") -> None:
    """Write series sharing (or not) an x-grid to one CSV file.

    Layout: ``x, <label1>, <label2>, ...``; series with different grids
    are resampled onto the union grid by linear interpolation, with
    empty cells outside a series' own range.
    """
    if not series_list:
        raise ValueError("need at least one series")
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    grid = np.unique(np.concatenate([s.x for s in series_list]))
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([x_name] + [s.label for s in series_list])
        for x in grid:
            row: list[str] = [repr(float(x))]
            for s in series_list:
                if s.x.min() <= x <= s.x.max():
                    row.append(repr(float(np.interp(x, s.x, s.y))))
                else:
                    row.append("")
            writer.writerow(row)


def read_series_csv(path: str) -> list[Series]:
    """Inverse of :func:`write_series_csv` (skips empty cells)."""
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        labels = header[1:]
        columns: list[list[tuple[float, float]]] = [[] for _ in labels]
        for row in reader:
            x = float(row[0])
            for i, cell in enumerate(row[1:]):
                if cell:
                    columns[i].append((x, float(cell)))
    out = []
    for label, pts in zip(labels, columns):
        if pts:
            xs, ys = zip(*pts)
            out.append(Series(np.array(xs), np.array(ys), label))
    return out
