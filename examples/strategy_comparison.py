#!/usr/bin/env python
"""Side-by-side comparison of every workflow strategy.

On the paper's Figure 8 instance (truncated-Normal tasks, R=29), this
example pits against each other:

* a deliberately early and a deliberately late static count;
* the paper's static-optimal count (Section 4.2);
* the paper's dynamic rule (Section 4.3);
* the exact Bellman optimal-stopping rule (library extension);
* the clairvoyant oracle (upper bound).

It prints the Monte-Carlo league table and draws the dynamic decision
curves with the crossing point W_int.

Run:  python examples/strategy_comparison.py
"""

from repro.analysis import dynamic_decision_curves, workflow_gains
from repro.core import DynamicStrategy, StaticCountPolicy
from repro.distributions import Normal, truncate
from repro.plotting import render_chart


def main() -> None:
    R = 29.0
    tasks = truncate(Normal(3.0, 0.5), 0.0)
    ckpt = truncate(Normal(5.0, 0.4), 0.0)

    print(f"instance: R={R}, tasks ~ truncN(3, 0.5^2), checkpoint ~ truncN(5, 0.4^2)\n")

    comparison = workflow_gains(
        R,
        tasks,
        ckpt,
        n_trials=150_000,
        rng=11,
        extra_policies={
            "static-too-early": StaticCountPolicy(4),
            "static-too-late": StaticCountPolicy(9),
        },
    )
    print("mean saved work per reservation (150k Monte-Carlo trials):\n")
    print(comparison.table())
    oracle_mean = comparison.summaries["oracle"].mean
    print("\nas a fraction of the clairvoyant oracle:")
    for name, summary in sorted(
        comparison.summaries.items(), key=lambda kv: -kv[1].mean
    ):
        print(f"  {name:<18} {100 * summary.mean / oracle_mean:6.2f}%")

    strat = DynamicStrategy(R, tasks, ckpt)
    w_int = strat.crossing_point()
    ckpt_curve, cont_curve = dynamic_decision_curves(strat, points=121)
    print("\nthe dynamic rule's decision curves (paper Figure 8):\n")
    print(
        render_chart(
            [ckpt_curve, cont_curve],
            title=f"checkpoint vs continue, W_int = {w_int:.2f}",
            markers={"W_int": w_int},
        )
    )


if __name__ == "__main__":
    main()
