#!/usr/bin/env python
"""Calibrating the checkpoint-duration law from traces.

The paper assumes D_C is known; in practice it "can be learned from
traces of previous checkpoints" (Section 1). This example walks the
full calibration pipeline:

1. synthesize a realistic checkpoint trace (fixed payload through a
   contended parallel file system with fluctuating bandwidth);
2. fit every candidate family by maximum likelihood, rank by AIC and
   check the winner with a Kolmogorov-Smirnov test;
3. truncate the fitted law to the observed range and compute the
   optimal margin;
4. Monte-Carlo-validate the margin against the *true* generating
   process and against the pessimistic (worst-ever-observed) margin.

Run:  python examples/trace_calibration.py
"""

import numpy as np

from repro.core import solve
from repro.distributions import Uniform, truncate
from repro.simulation import simulate_preemptible
from repro.traces import BandwidthCheckpointLaw, select_best, synthetic_checkpoint_trace


def main() -> None:
    rng = np.random.default_rng(7)
    R = 30.0

    # -- 1. the "monitoring data": 1500 past checkpoint durations ---------
    volume = 24e9  # 24 GB payload
    bandwidth = Uniform(2e9, 8e9)  # contended PFS: 2-8 GB/s effective
    latency = 0.6
    trace = synthetic_checkpoint_trace(1500, volume, bandwidth, latency=latency, rng=rng)
    print(f"observed {trace.size} checkpoints: "
          f"min={trace.min():.2f}s mean={trace.mean():.2f}s max={trace.max():.2f}s")

    # -- 2. fit + select ----------------------------------------------------
    report = select_best(trace)
    print("\nmodel selection (AIC, lower is better):")
    print(report.table())
    print(f"\nwinner: {report.best.family} "
          f"(KS D={report.ks_stat:.4f}, p={report.ks_p:.3f})")

    # -- 3. truncate to the observed range, solve for the margin ----------
    fitted = truncate(report.best.distribution, float(trace.min()), float(trace.max()))
    sol = solve(R, fitted)
    print(f"\noptimal margin: start the checkpoint {sol.x_opt:.3f}s before the end")
    print(f"  modelled expected saved work: {sol.expected_work_opt:.3f}s")
    print(f"  pessimistic margin (C_max={fitted.upper:.2f}s) saves {sol.pessimistic_work:.3f}s")
    print(f"  modelled gain: {sol.gain:.3f}x")

    # -- 4. validate against the true generating process --------------------
    true_law = BandwidthCheckpointLaw(volume, bandwidth, latency=latency)
    mc_opt = simulate_preemptible(R, true_law, sol.x_opt, 200_000, rng).mean()
    mc_pess = simulate_preemptible(R, true_law, fitted.upper, 200_000, rng).mean()
    print("\nvalidation on 200k fresh runs of the *true* process:")
    print(f"  calibrated margin:  {mc_opt:.3f}s saved on average")
    print(f"  pessimistic margin: {mc_pess:.3f}s saved on average")
    print(f"  realized gain:      {mc_opt / mc_pess:.3f}x")


if __name__ == "__main__":
    main()
