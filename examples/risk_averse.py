#!/usr/bin/env python
"""Risk-averse checkpoint planning.

The paper maximizes the *expected* saved work; its pessimistic baseline
(X = C_max) is the zero-risk extreme. This example walks the whole
frontier in between, for both scenarios:

* preemptible: the q-quantile-optimal margin is just the checkpoint
  law's q-quantile, so "how sure do you want to be?" maps directly to
  a margin;
* workflow: maximize P(saved work >= target) by backward induction and
  compare against the expectation-optimal stopping rule.

Run:  python examples/risk_averse.py
"""

import numpy as np

from repro.core import (
    OptimalStoppingSolver,
    TargetProbabilitySolver,
    quantile_optimal_margin,
    solve,
)
from repro.core.preemptible import expected_work
from repro.distributions import Normal, Uniform, truncate
from repro.simulation import simulate_threshold


def preemptible_frontier() -> None:
    law = Uniform(1.0, 7.5)
    R = 10.0
    sol = solve(R, law)
    print("=== preemptible (Fig. 1a instance) ===")
    print(f"expectation-optimal: X = {sol.x_opt:.3f}, E(W) = {sol.expected_work_opt:.3f}, "
          f"success prob = {float(law.cdf(sol.x_opt)):.3f}\n")
    print(f"{'q':>6} {'X*':>8} {'work if saved':>14} {'E(W(X*))':>10}")
    for q in (0.5, 0.7, 0.85, 0.95, 0.99, 0.999):
        x, guarantee = quantile_optimal_margin(R, law, q)
        print(f"{q:>6.3f} {x:>8.3f} {guarantee:>14.3f} "
              f"{float(expected_work(R, law, x)):>10.3f}")
    print("\nq -> 1 recovers the paper's pessimistic margin X = b = 7.5;")
    print("every row trades expected work for certainty.\n")


def workflow_guarantees() -> None:
    tasks = truncate(Normal(3.0, 0.5), 0.0)
    ckpt = truncate(Normal(5.0, 0.4), 0.0)
    R = 29.0
    rng = np.random.default_rng(4)
    solver = TargetProbabilitySolver(R, tasks, ckpt)
    exp_threshold = OptimalStoppingSolver(R, tasks, ckpt).solve().threshold
    exp_saved = simulate_threshold(R, tasks, ckpt, exp_threshold, 150_000, rng)
    print("=== workflow (Fig. 8 instance) ===")
    print(f"expectation-optimal rule: threshold {exp_threshold:.2f}, "
          f"E[saved] = {exp_saved.mean():.2f}\n")
    print(f"{'target':>7} {'best P':>9} {'E-opt rule P':>13} {'checkpoint at':>14}")
    for target in (15.0, 19.0, 21.0, 22.5, 24.0):
        best = solver.solve(target)
        p_exp = float(np.mean(exp_saved >= target))
        print(f"{target:>7.1f} {best.probability:>9.4f} {p_exp:>13.4f} "
              f"{best.stop_region_start:>14.2f}")
    print("\nfor demanding targets, checkpointing *exactly at* the target")
    print("(rather than pushing for more expected work) multiplies the")
    print("probability of meeting it.")


if __name__ == "__main__":
    preemptible_frontier()
    print()
    workflow_guarantees()
