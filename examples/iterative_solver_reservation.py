#!/usr/bin/env python
"""A real iterative solver executed across checkpointed reservations.

This is the paper's motivating workload end to end:

1. build a 2-D Poisson system and a Jacobi solver for it;
2. instrument a dry run on a simulated machine to learn the task law;
3. run the solve inside fixed-length reservations, letting the dynamic
   strategy decide when each reservation should checkpoint;
4. recover from the checkpoint store at the start of each reservation.

Run:  python examples/iterative_solver_reservation.py
"""

import numpy as np

from repro.core import DynamicPolicy
from repro.distributions import LogNormal, Normal, truncate
from repro.simulation import TraceTaskSource, run_reservation
from repro.traces import select_best
from repro.workflows import (
    InMemoryCheckpointStore,
    JacobiSolver,
    MachineModel,
    manufactured_rhs,
    poisson_2d,
    run_instrumented,
)


def main() -> None:
    rng = np.random.default_rng(2023)

    # -- 1. the application ------------------------------------------------
    A = poisson_2d(16)
    b, x_star = manufactured_rhs(A, rng)
    print(f"system: 2-D Poisson, {A.shape[0]} unknowns, nnz={A.nnz}")

    # -- 2. learn the task-duration law from an instrumented run -----------
    machine = MachineModel(5e7, noise_law=LogNormal.from_moments(1.0, 0.12))
    probe = JacobiSolver(A, b, tolerance=1e-7)
    trace = run_instrumented(probe, machine, rng=rng)
    durations = trace.as_array()
    report = select_best(durations)
    task_law = report.best.distribution
    print(
        f"instrumented {durations.size} iterations "
        f"(mean {durations.mean():.4f}s); fitted task law: "
        f"{report.best.family} (KS p={report.ks_p:.3f})"
    )

    # -- 3. reservations with a dynamic checkpoint policy ------------------
    mean_task = durations.mean()
    ckpt_law = truncate(Normal(3.0 * mean_task, 0.3 * mean_task), 0.0)
    R = 12.0 * mean_task
    policy = DynamicPolicy(task_law, ckpt_law)
    print(f"reservations of R={R:.3f}s, checkpoint ~N({3*mean_task:.3f}, ...)")

    solver = JacobiSolver(A, b, tolerance=1e-7)
    store = InMemoryCheckpointStore()
    reservation = 0
    while not solver.converged and reservation < 500:
        reservation += 1
        if store.has_checkpoint:
            store.recover(solver)  # roll back to the last saved state

        # Replay real iteration timings for this reservation window.
        start_iter = solver.iteration_count
        src = TraceTaskSource(
            np.roll(durations, -(start_iter % durations.size)), cycle=True
        )
        rec = run_reservation(
            R, src, ckpt_law, policy, rng,
            recovery=mean_task if store.has_checkpoint else 0.0,
        )
        # Mirror the simulated progress onto the actual solver state.
        for _ in range(rec.tasks_completed):
            if not solver.converged:
                solver.iterate()
        if rec.checkpoints_succeeded:
            store.write(solver)
        status = "ckpt OK" if rec.checkpoints_succeeded else "ckpt FAILED (work lost)"
        print(
            f"  reservation {reservation:>3}: {rec.tasks_completed:>3} iterations, "
            f"{status}, residual={solver.residual:.2e}"
        )
        if not rec.checkpoints_succeeded and store.has_checkpoint:
            # Lost segment: solver state must roll back for honesty.
            store.recover(solver)

    err = np.linalg.norm(solver.x - x_star) / np.linalg.norm(x_star)
    print(
        f"converged in {reservation} reservations "
        f"({store.writes} checkpoints, {store.recoveries} recoveries); "
        f"relative error vs known solution: {err:.2e}"
    )


if __name__ == "__main__":
    main()
