#!/usr/bin/env python
"""A multi-reservation campaign with recovery and billing (Section 4.4).

An iterative application needing 500s of compute runs across 29s
reservations (recovery cost 1.5s after the first). Three regimes are
compared under both billing models:

* drop the reservation after its checkpoint (the paper's base model);
* continue after the checkpoint when the advisor approves;
* the same under by-usage billing with a high price (the advisor
  becomes thrifty).

Run:  python examples/reservation_campaign.py
"""

import numpy as np

from repro.core import (
    BillingModel,
    ContinuationAdvisor,
    StaticOptimalPolicy,
)
from repro.distributions import Normal, truncate
from repro.simulation import run_campaign


def main() -> None:
    rng = np.random.default_rng(5)
    tasks = truncate(Normal(3.0, 0.5), 0.0)
    ckpt = truncate(Normal(5.0, 0.4), 0.0)
    # The user planned with pessimistic task estimates (4.5s instead of
    # the true 3s) - the paper's own scenario for leftover time.
    planned_policy = StaticOptimalPolicy(Normal(4.5, 0.75), ckpt)

    target, R, recovery = 500.0, 29.0, 1.5
    print(f"target work {target}s, reservations of {R}s, recovery {recovery}s\n")

    regimes = {
        "drop after checkpoint": dict(
            continue_after_checkpoint=False,
            advisor=None,
            billing=BillingModel.BY_RESERVATION,
        ),
        "continue (paid anyway)": dict(
            continue_after_checkpoint=True,
            advisor=ContinuationAdvisor(tasks, ckpt, billing=BillingModel.BY_RESERVATION),
            billing=BillingModel.BY_RESERVATION,
        ),
        "continue (pay by use)": dict(
            continue_after_checkpoint=True,
            advisor=ContinuationAdvisor(
                tasks, ckpt, billing=BillingModel.BY_USAGE,
                price_per_second=3.0, value_per_work_unit=1.0,
            ),
            billing=BillingModel.BY_USAGE,
        ),
    }

    print(f"{'regime':<24} {'#resv':>6} {'used time':>10} {'utilization':>12} {'cost':>8}")
    for name, kw in regimes.items():
        result = run_campaign(
            target, R, tasks, ckpt, planned_policy, rng,
            recovery=recovery,
            price_per_second=1.0 if kw["billing"] is BillingModel.BY_RESERVATION else 3.0,
            **kw,
        )
        print(
            f"{name:<24} {result.reservations_used:>6} "
            f"{result.total_used_time:>10.1f} {100 * result.utilization:>11.1f}% "
            f"{result.total_cost:>8.1f}"
        )

    # Peek into one reservation's event timeline.
    from repro.simulation import run_reservation

    print("\nsample reservation timeline (continue-after-checkpoint):")
    rec = run_reservation(
        R, tasks, ckpt, planned_policy, rng,
        continue_after_checkpoint=True,
        advisor=ContinuationAdvisor(tasks, ckpt),
    )
    for ev in rec.events:
        detail = f" ({ev.detail:.2f}s)" if ev.detail else ""
        print(f"  t={ev.time:6.2f}  {ev.kind.value}{detail}")
    print(f"  -> saved {rec.work_saved:.2f}s of work, used {rec.time_used:.2f}s")


if __name__ == "__main__":
    main()
