#!/usr/bin/env python
"""Checkpoint placement in a non-IID processing pipeline.

The paper's general instance (Section 4.1): every stage has its own
duration law *and* its own checkpoint cost (stages produce different
data footprints). This example plans checkpoints for a 4-stage
video-analysis-style pipeline:

* the exact static plan (heterogeneous FFT convolution of stage laws);
* the CLT and deterministic-means heuristics, graded against it;
* the extended dynamic rule deciding live at each stage boundary.

Run:  python examples/heterogeneous_pipeline.py
"""

import numpy as np

from repro.core import GeneralStaticSolver
from repro.distributions import Gamma, LogNormal, Normal, Uniform, truncate
from repro.workflows import LinearWorkflow, WorkflowTask


def build_pipeline() -> LinearWorkflow:
    """ingest -> detect -> track -> encode, each with its own laws."""
    return LinearWorkflow(
        [
            WorkflowTask("ingest", Uniform(0.8, 1.6), truncate(Normal(0.4, 0.1), 0.0)),
            WorkflowTask("detect", Gamma(6.0, 0.4), truncate(Normal(1.8, 0.3), 0.0)),
            WorkflowTask("track", LogNormal.from_moments(1.5, 0.6), truncate(Normal(0.9, 0.2), 0.0)),
            WorkflowTask("encode", Gamma(2.0, 0.6), truncate(Normal(0.3, 0.05), 0.0)),
        ]
    )


def main() -> None:
    wf = build_pipeline()
    R = 7.5
    print(f"pipeline: {' -> '.join(t.name for t in wf.tasks)}   (R = {R})")
    print(f"{'stage':<8} {'E[duration]':>12} {'E[checkpoint]':>14}")
    for t in wf.tasks:
        print(f"{t.name:<8} {t.duration_law.mean():>12.3f} {t.checkpoint_law.mean():>14.3f}")

    # -- static planning ------------------------------------------------------
    solver = GeneralStaticSolver(R, wf)
    print(f"\nstatic plans (expected saved work by stopping stage):")
    print(f"{'k':>3} {'stage':<8} {'exact':>9} {'clt':>9} {'means':>9}")
    exact = solver.solve("exact")
    clt = solver.solve("clt")
    mean = solver.solve("mean")
    for k in range(1, solver.max_stages + 1):
        print(
            f"{k:>3} {wf.task_at(k - 1).name:<8} {exact.evaluations[k]:>9.4f} "
            f"{clt.evaluations[k]:>9.4f} {mean.evaluations[k]:>9.4f}"
        )
    print(f"\nexact optimum: checkpoint after stage {exact.k_opt} "
          f"({wf.task_at(exact.k_opt - 1).name}), E = {exact.expected_work_opt:.4f}")
    for m, sol in (("clt", clt), ("means", mean)):
        realized = exact.evaluations[sol.k_opt]
        print(f"  {m:<6} picks stage {sol.k_opt} -> realized E = {realized:.4f} "
              f"(regret {exact.expected_work_opt - realized:.4f})")

    # -- dynamic decisions ------------------------------------------------------
    print("\nextended dynamic rule, live run (seed 3):")
    rng = np.random.default_rng(3)
    w = 0.0
    for i in range(len(wf)):
        x = float(wf.task_at(i).duration_law.sample(1, rng)[0])
        w += x
        budget = R - w
        stop = wf.should_checkpoint(i, w, budget)
        verdict = "CHECKPOINT" if stop else "continue"
        print(f"  stage {wf.task_at(i).name:<8} took {x:.3f}s "
              f"(total {w:.3f}s, budget {budget:.3f}s) -> {verdict}")
        if stop:
            c = float(wf.task_at(i).checkpoint_law.sample(1, rng)[0])
            ok = w + c <= R
            print(f"  checkpoint took {c:.3f}s -> "
                  f"{'saved ' + format(w, '.3f') + 's of work' if ok else 'DID NOT FIT: work lost'}")
            break


if __name__ == "__main__":
    main()
