#!/usr/bin/env python
"""Quickstart: both scenarios of the paper in a few lines each.

Run:  python examples/quickstart.py
"""

from repro import (
    DynamicStrategy,
    Normal,
    StaticStrategy,
    Uniform,
    solve_preemptible,
    truncate,
)


def scenario_1_preemptible() -> None:
    """A preemptible application: when should the checkpoint start?

    Reservation R = 10; checkpoint duration known only as
    C ~ Uniform([1, 7.5]) (learned from previous runs).
    """
    print("=== Scenario 1: checkpoint at any instant ===")
    sol = solve_preemptible(R=10.0, law=Uniform(1.0, 7.5))
    print(f"  start the checkpoint {sol.x_opt:.2f}s before the end of the reservation")
    print(f"  expected saved work:       {sol.expected_work_opt:.3f}s")
    print(f"  worst-case margin (X=7.5): {sol.pessimistic_work:.3f}s")
    print(f"  gain over the safe choice: {sol.gain:.2f}x")
    print()


def scenario_2_workflow() -> None:
    """A chain of stochastic tasks: checkpoint after which task?

    Tasks ~ N(3, 0.5^2); checkpoint ~ N(5, 0.4^2) truncated to [0, inf).
    """
    print("=== Scenario 2: checkpoint only at task boundaries ===")
    ckpt = truncate(Normal(5.0, 0.4), 0.0)

    # Static: decide the task count before starting (R = 30).
    static = StaticStrategy(R=30.0, task_law=Normal(3.0, 0.5), checkpoint_law=ckpt)
    sol = static.solve()
    print(f"  static plan:  run {sol.n_opt} tasks, then checkpoint "
          f"(expected saved work {sol.expected_work_opt:.2f}s)")

    # Dynamic: re-decide at the end of every task (R = 29).
    dynamic = DynamicStrategy(
        R=29.0, task_law=truncate(Normal(3.0, 0.5), 0.0), checkpoint_law=ckpt
    )
    w_int = dynamic.crossing_point()
    print(f"  dynamic rule: checkpoint once the work done reaches {w_int:.2f}s")
    for work_done in (15.0, 19.0, 21.0):
        action = "CHECKPOINT" if dynamic.should_checkpoint(work_done) else "run another task"
        print(f"    after {work_done:.0f}s of work -> {action}")
    print()


if __name__ == "__main__":
    scenario_1_preemptible()
    scenario_2_workflow()
