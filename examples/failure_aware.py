#!/usr/bin/env python
"""Failures inside the reservation: when one final checkpoint stops
being enough.

The paper assumes a failure-free platform. This example (its stated
future-work direction) injects exponential fail-stop errors and shows
the regime change:

* failures rare within a reservation (lam * R << 1): the paper's single
  final checkpoint is near-optimal;
* failures plausible (lam * R ~ 1): periodic checkpointing at the
  Young/Daly period becomes mandatory.

Run:  python examples/failure_aware.py
"""

import numpy as np

from repro.core import daly_period, final_only_expected_work, young_period
from repro.distributions import Normal, truncate
from repro.simulation import (
    simulate_final_only_with_failures,
    simulate_periodic_with_failures,
)


def main() -> None:
    rng = np.random.default_rng(13)
    R = 300.0
    ckpt = truncate(Normal(5.0, 0.4), 0.0)
    margin = 6.0
    recovery = 2.0
    trials = 60_000

    print(f"R = {R}s, checkpoint ~ truncN(5, 0.4^2), final margin {margin}s\n")
    print(f"{'MTBF':>9} {'lam*R':>7} {'final-only':>11} {'Young T':>9} "
          f"{'periodic@Young':>15} {'periodic@Daly':>14}")
    for mtbf in (10_000.0, 2_000.0, 500.0, 150.0, 50.0):
        lam = 1.0 / mtbf
        t_young = young_period(5.0, lam)
        t_daly = daly_period(5.0, lam)
        final = simulate_final_only_with_failures(R, ckpt, margin, lam, trials, rng).mean()
        young = simulate_periodic_with_failures(
            R, ckpt, t_young, lam, trials, rng, recovery=recovery
        ).mean()
        daly = simulate_periodic_with_failures(
            R, ckpt, t_daly, lam, trials, rng, recovery=recovery
        ).mean()
        print(f"{mtbf:>9.0f} {lam * R:>7.2f} {final:>11.1f} {t_young:>9.1f} "
              f"{young:>15.1f} {daly:>14.1f}")

    lam = 1.0 / 500.0
    analytic = final_only_expected_work(R, ckpt, margin, lam)
    print(f"\nanalytic check (MTBF 500s): final-only E(W) = {analytic:.2f} "
          "(matches the simulation column above)")
    print("\ntakeaway: the paper's failure-free analysis is the lam*R << 1 row;")
    print("as failures become plausible inside one reservation, intermediate")
    print("checkpoints at the Young/Daly period dominate, and the final-margin")
    print("question becomes the *last* of many checkpoint decisions.")


if __name__ == "__main__":
    main()
